"""Outcome ledger round-trips and the canonical outcome projection."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.core.types import Job
from repro.service.epochs import EpochBatch
from repro.service.events import AskSubmitted
from repro.service.ledger import OutcomeLedger, canonical_outcome
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def small_outcome(seed=0):
    job = Job.uniform(2, 4)
    scenario = paper_scenario(
        60, job, seed, distribution=UserDistribution(num_types=2)
    )
    mech = RIT(round_budget="until-complete")
    return mech.run(job, scenario.truthful_asks(), scenario.tree, seed)


def batch(index=0):
    events = (AskSubmitted(tick=0, user_id=0, task_type=0, capacity=1, value=1.0),)
    return EpochBatch(index=index, events=events, first_tick=0, last_tick=0)


class TestCanonicalOutcome:
    def test_excludes_measured_timings(self):
        doc = canonical_outcome(small_outcome())
        assert set(doc) == {
            "completed",
            "allocation",
            "auction_payments",
            "payments",
            "rounds",
        }

    def test_keys_are_json_object_keys(self):
        doc = canonical_outcome(small_outcome())
        assert all(isinstance(uid, str) for uid in doc["allocation"])
        assert all(isinstance(uid, str) for uid in doc["payments"])


class TestOutcomeLedger:
    def test_bad_run_id_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            OutcomeLedger(tmp_path, "../escape")

    def test_meta_round_trip(self, tmp_path):
        ledger = OutcomeLedger(tmp_path, "run-a")
        ledger.write_meta({"seed": 3, "queue_size": 8})
        assert ledger.read_meta() == {"seed": 3, "queue_size": 8}

    def test_missing_meta_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            OutcomeLedger(tmp_path, "run-a").read_meta()

    def test_append_read_round_trip_floats_exact(self, tmp_path):
        ledger = OutcomeLedger(tmp_path, "run-a")
        outcome = small_outcome()
        ledger.append(batch(0), outcome)
        ledger.append(batch(1), outcome)
        records = ledger.read_epochs()
        assert [r["epoch"] for r in records] == [0, 1]
        # JSON round-trips Python floats via repr: parsed payments must be
        # bit-identical to the in-memory outcome, not merely close.
        want = canonical_outcome(outcome)["payments"]
        assert records[0]["outcome"]["payments"] == want

    def test_read_epochs_empty(self, tmp_path):
        assert OutcomeLedger(tmp_path, "run-a").read_epochs() == []
