"""The cumulative state machine: admission rules and withdrawal grafting."""

from repro.core.types import Job
from repro.service.events import AskSubmitted, ReferralEdge, Withdrawal
from repro.service.state import ServiceState
from repro.tree.incentive_tree import ROOT

JOB = Job([4, 3, 5])


def ask(uid, tick=0, task_type=0):
    return AskSubmitted(
        tick=tick, user_id=uid, task_type=task_type, capacity=2, value=1.5
    )


class TestAskAdmission:
    def test_spontaneous_join_attaches_to_root(self):
        state = ServiceState(JOB)
        assert state.apply(ask(0)) is None
        assert state.snapshot_tree().to_parent_map()[0] == ROOT

    def test_duplicate_ask_refused(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        assert "already submitted" in state.apply(ask(0))
        assert state.num_participants == 1

    def test_referral_then_join_attaches_to_parent(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        assert state.apply(ReferralEdge(tick=1, parent_id=0, child_id=1)) is None
        assert state.apply(ask(1, tick=2)) is None
        assert state.snapshot_tree().to_parent_map()[1] == 0


class TestReferralAdmission:
    def test_referral_after_join_refused(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        state.apply(ask(1))
        refused = state.apply(ReferralEdge(tick=1, parent_id=0, child_id=1))
        assert "already joined" in refused

    def test_duplicate_referrer_refused(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        state.apply(ask(1))
        state.apply(ReferralEdge(tick=1, parent_id=0, child_id=2))
        refused = state.apply(ReferralEdge(tick=2, parent_id=1, child_id=2))
        assert "already has a recorded referrer" in refused

    def test_unjoined_referrer_refused_root_allowed(self):
        state = ServiceState(JOB)
        assert "has not joined" in state.apply(
            ReferralEdge(tick=0, parent_id=9, child_id=1)
        )
        assert state.apply(ReferralEdge(tick=0, parent_id=ROOT, child_id=1)) is None


class TestWithdrawal:
    def test_withdraw_non_participant_refused(self):
        state = ServiceState(JOB)
        assert "not an active participant" in state.apply(
            Withdrawal(tick=0, user_id=5)
        )

    def test_withdraw_grafts_joined_children_to_grandparent(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        state.apply(ReferralEdge(tick=1, parent_id=0, child_id=1))
        state.apply(ask(1, tick=2))
        state.apply(ReferralEdge(tick=3, parent_id=1, child_id=2))
        state.apply(ask(2, tick=4))
        assert state.apply(Withdrawal(tick=5, user_id=1)) is None
        parents = state.snapshot_tree().to_parent_map()
        assert 1 not in parents
        assert parents[2] == 0  # grafted past the withdrawn middle node
        assert 1 not in state.snapshot_asks()

    def test_withdraw_grafts_pending_referrals(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        state.apply(ReferralEdge(tick=1, parent_id=0, child_id=1))
        state.apply(ask(1, tick=2))
        state.apply(ReferralEdge(tick=3, parent_id=1, child_id=2))
        state.apply(Withdrawal(tick=4, user_id=1))
        # user 2 never joined before the referrer withdrew; on join they
        # attach to the withdrawn user's parent, not to a dangling id.
        state.apply(ask(2, tick=5))
        assert state.snapshot_tree().to_parent_map()[2] == 0

    def test_withdraw_root_child_grafts_to_root(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        state.apply(ReferralEdge(tick=1, parent_id=0, child_id=1))
        state.apply(ask(1, tick=2))
        state.apply(Withdrawal(tick=3, user_id=0))
        assert state.snapshot_tree().to_parent_map()[1] == ROOT


class TestSnapshots:
    def test_snapshots_are_isolated_from_later_events(self):
        state = ServiceState(JOB)
        state.apply(ask(0))
        asks_before = state.snapshot_asks()
        tree_before = state.snapshot_tree()
        state.apply(ask(1))
        assert list(asks_before) == [0]
        assert 1 not in tree_before.to_parent_map()

    def test_admission_order_is_preserved(self):
        state = ServiceState(JOB)
        for uid in (5, 2, 9, 0):
            state.apply(ask(uid))
        assert list(state.snapshot_asks()) == [5, 2, 9, 0]
