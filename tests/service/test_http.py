"""The asyncio HTTP telemetry plane (`repro.service.http`) over real sockets."""

import asyncio
import json

from repro.core.rit import RIT
from repro.core.rng import spawn_seeds
from repro.obs.openmetrics import parse_openmetrics
from repro.service import (
    MechanismService,
    MetricsServer,
    ServiceConfig,
    build_scenario,
    http_get,
    scenario_event_stream,
)


def drained_service(seed=0, users=100, types=3, tasks_per_type=5):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    events = scenario_event_stream(scenario, stream_rng)
    mechanism = RIT(rng_policy="per-type", round_budget="until-complete")
    service = MechanismService(
        mechanism, scenario.job, ServiceConfig(seed=seed, epoch_max_events=32)
    )
    report = service.serve_stream(events)
    return service, report


async def probe(service, path):
    server = MetricsServer(service, port=0)
    await server.start()
    try:
        return await http_get(server.host, server.port, path)
    finally:
        await server.stop()


class TestEndpoints:
    def test_metrics_round_trips_the_parser(self):
        service, report = drained_service()
        status, body = asyncio.run(probe(service, "/metrics"))
        assert status == 200
        families = parse_openmetrics(body)
        assert families  # non-empty exposition
        closed = families["rit_service_epochs_closed"]
        assert closed.type == "counter"
        assert closed.samples[0].value == len(report.epochs)
        latency = families["rit_epoch_close_to_outcome_seconds"]
        assert latency.type == "histogram"
        count = [
            s for s in latency.samples if s.name.endswith("_count")
        ]
        assert count[0].value == len(report.epochs)
        assert any(name.startswith("rit_win_rate_depth") for name in families)

    def test_healthz_always_ok(self):
        service, report = drained_service()
        status, body = asyncio.run(probe(service, "/healthz"))
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["phase"] == "drained"
        assert doc["epochs_closed"] == len(report.epochs)

    def test_readyz_unready_after_drain(self):
        service, _ = drained_service()
        status, body = asyncio.run(probe(service, "/readyz"))
        assert status == 503
        doc = json.loads(body)
        assert doc["status"] == "unready"
        assert "drained" in doc["reason"]

    def test_readyz_ready_while_serving(self):
        service, _ = drained_service()
        service.telemetry.phase = "serving"  # simulate a live stream
        status, body = asyncio.run(probe(service, "/readyz"))
        assert status == 200
        assert json.loads(body)["status"] == "ready"

    def test_epochs_payload_matches_ring(self):
        service, report = drained_service()
        status, body = asyncio.run(probe(service, "/epochs"))
        assert status == 200
        doc = json.loads(body)
        assert doc["phase"] == "drained"
        assert len(doc["frames"]) == len(report.epochs)
        assert doc["slo"]["epochs_closed"] == len(report.epochs)
        assert [f["epoch"] for f in doc["frames"]] == list(
            range(len(report.epochs))
        )

    def test_unknown_route_404(self):
        service, _ = drained_service()
        status, body = asyncio.run(probe(service, "/nope"))
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_query_strings_ignored(self):
        service, _ = drained_service()
        status, _ = asyncio.run(probe(service, "/healthz?verbose=1"))
        assert status == 200


class TestRouting:
    def test_non_get_rejected(self):
        service, _ = drained_service()
        server = MetricsServer(service)
        status, _, body = server._route("POST", "/metrics")
        assert status == 405

    def test_ephemeral_port_resolved_and_url(self):
        service, _ = drained_service()

        async def check():
            server = MetricsServer(service, port=0)
            await server.start()
            try:
                assert server.port != 0
                assert server.url("/epochs") == (
                    f"http://127.0.0.1:{server.port}/epochs"
                )
            finally:
                await server.stop()

        asyncio.run(check())
