"""End-to-end MechanismService runs: counters, ledger, tracing, sharding."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.core.rng import spawn_seeds
from repro.devtools.trace_schema import validate_trace_events
from repro.obs import Tracer
from repro.service import (
    MechanismService,
    OutcomeLedger,
    ServiceConfig,
    build_scenario,
    canonical_outcome,
    scenario_event_stream,
)


def mechanism(**overrides):
    params = dict(rng_policy="per-type", round_budget="until-complete")
    params.update(overrides)
    return RIT(**params)


def small_stream(seed=0, users=120, types=3, tasks_per_type=6, withdraw=0.05):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    events = scenario_event_stream(
        scenario, stream_rng, withdraw_fraction=withdraw
    )
    return scenario, events


class TestConstruction:
    def test_stream_policy_rejected(self):
        scenario, _ = small_stream()
        with pytest.raises(ConfigurationError):
            MechanismService(RIT(rng_policy="stream"), scenario.job)


class TestServeStream:
    def test_counters_and_epoch_coverage(self):
        scenario, events = small_stream()
        service = MechanismService(
            mechanism(), scenario.job, ServiceConfig(seed=0, epoch_max_events=32)
        )
        report = service.serve_stream(events)
        assert report.offered == len(events)
        assert report.accepted == len(events)  # closed-loop: nothing dropped
        assert report.rejected == 0
        assert len(report.consumed) == report.accepted
        assert report.applied + report.refused == len(report.consumed)
        assert sum(e.batch_events for e in report.epochs) == report.applied
        assert [e.index for e in report.epochs] == list(range(len(report.epochs)))
        assert report.queue_highwater <= service.config.queue_size

    def test_ledger_records_every_epoch(self, tmp_path):
        scenario, events = small_stream()
        ledger = OutcomeLedger(tmp_path, "svc-test")
        service = MechanismService(
            mechanism(),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=32),
            ledger=ledger,
        )
        report = service.serve_stream(events)
        records = ledger.read_epochs()
        assert len(records) == len(report.epochs)
        meta = ledger.read_meta()
        assert meta["rng_policy"] == "per-type"
        # Ledger lines are the canonical projection of the in-memory outcome.
        for record, epoch in zip(records, report.epochs):
            assert record["outcome"] == canonical_outcome(epoch.outcome)
            assert record["batch_events"] == epoch.batch_events

    def test_trace_is_schema_valid_with_service_counters(self):
        scenario, events = small_stream(users=80, tasks_per_type=4)
        tracer = Tracer("svc-trace", seed=0)
        service = MechanismService(
            mechanism(),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=32),
            tracer=tracer,
        )
        service.serve_stream(events)
        assert validate_trace_events(tracer.events) == []
        names = {e.get("name") for e in tracer.events}
        assert {"service", "epoch", "shard", "join"} <= names
        counters = {
            e["name"] for e in tracer.events if e["ev"] == "counter"
        }
        assert {
            "service_events_offered",
            "service_events_accepted",
            "service_events_applied",
            "service_epochs_closed",
            "service_shards_run",
        } <= counters

    def test_columnar_service_traces_store_footprint_per_epoch(self):
        scenario, events = small_stream(users=80, tasks_per_type=4)
        tracer = Tracer("svc-columnar", seed=0)
        service = MechanismService(
            mechanism(engine="columnar"),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=32),
            tracer=tracer,
        )
        report = service.serve_stream(events)
        assert validate_trace_events(tracer.events) == []
        store_events = [
            e
            for e in tracer.events
            if e["ev"] == "counter" and e["name"] == "columnar_store_bytes"
        ]
        # One store build per epoch, each a positive integer footprint.
        assert len(store_events) == len(report.epochs)
        assert all(
            e["unit"] == "bytes" and isinstance(e["delta"], int)
            and e["delta"] > 0
            for e in store_events
        )

    def test_unsharded_epochs_match_sharded(self):
        scenario, events = small_stream(users=100, tasks_per_type=5)
        sharded = MechanismService(
            mechanism(),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=48, shard_workers=True),
        ).serve_stream(list(events))
        unsharded = MechanismService(
            mechanism(),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=48, shard_workers=False),
        ).serve_stream(list(events))
        assert len(sharded.epochs) == len(unsharded.epochs) > 0
        for left, right in zip(sharded.outcomes(), unsharded.outcomes()):
            assert canonical_outcome(left) == canonical_outcome(right)

    def test_open_loop_counts_rejections_instead_of_growing(self):
        scenario, events = small_stream(users=200, tasks_per_type=8)
        service = MechanismService(
            mechanism(),
            scenario.job,
            ServiceConfig(seed=0, epoch_max_events=64, queue_size=16),
        )
        report = service.serve_stream(events, open_loop=True)
        assert report.queue_highwater <= 16
        assert report.offered == report.accepted + report.invalid + report.rejected
