"""The service's correctness anchor: online == offline, bit for bit.

For a fixed root seed and admitted event stream, the concurrent sharded
service must produce epoch outcomes *bit-identical* to running the plain
offline ``RIT.run`` (``rng_policy="per-type"``) over the cumulative state
at each epoch close — identical payments, winners, and round diagnostics
(which pin the underlying RNG draws).  The seeded scenarios cover
count-triggered and tick-triggered epochs, every registry engine, and
withdrawal grafting mid-stream; the columnar service is additionally
anchored against a *sorted*-engine offline replay, pinning the
cross-engine RNG-stream contract end to end.
"""

import pytest

from repro.core.rit import RIT
from repro.core.rng import spawn_seeds
from repro.service import (
    MechanismService,
    ServiceConfig,
    build_scenario,
    differential_check,
    replay_outcomes,
    scenario_event_stream,
)

SCENARIOS = [
    # (seed, users, types, tasks_per_type, epoch_events, epoch_ticks,
    #  withdraw_fraction, engine)
    pytest.param(5, 120, 3, 6, 32, None, 0.0, "sorted", id="seed5-count-sorted"),
    pytest.param(9, 200, 4, 8, 24, 40, 0.05, "sorted", id="seed9-ticks-sorted"),
    pytest.param(13, 150, 2, 10, 48, 25, 0.1, "reference", id="seed13-ticks-reference"),
    pytest.param(17, 180, 3, 7, 28, None, 0.08, "columnar", id="seed17-count-columnar"),
    pytest.param(23, 140, 4, 6, 30, 35, 0.12, "columnar", id="seed23-ticks-columnar"),
]


@pytest.mark.parametrize(
    "seed,users,types,tasks_per_type,epoch_events,epoch_ticks,"
    "withdraw_fraction,engine",
    SCENARIOS,
)
def test_sharded_service_is_bit_identical_to_offline_replay(
    seed, users, types, tasks_per_type, epoch_events, epoch_ticks,
    withdraw_fraction, engine,
):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    events = scenario_event_stream(
        scenario, stream_rng, withdraw_fraction=withdraw_fraction
    )
    config = ServiceConfig(
        seed=seed,
        epoch_max_events=epoch_events,
        epoch_max_ticks=epoch_ticks,
        shard_workers=True,
    )
    service = MechanismService(
        RIT(engine=engine, rng_policy="per-type", round_budget="until-complete"),
        scenario.job,
        config,
    )
    report = service.serve_stream(events)
    assert len(report.epochs) >= 3  # a meaningful multi-epoch run

    replayed = replay_outcomes(
        report.consumed,
        scenario.job,
        RIT(engine=engine, rng_policy="per-type", round_budget="until-complete"),
        seed=seed,
        policy=config.policy(),
    )
    problems = differential_check(
        report.outcomes(), [outcome for _, outcome in replayed]
    )
    assert problems == []
    # The replay cut the same batches from the same stream.
    assert [batch.index for batch, _ in replayed] == [
        epoch.index for epoch in report.epochs
    ]
    assert [batch.num_events for batch, _ in replayed] == [
        epoch.batch_events for epoch in report.epochs
    ]


def test_columnar_service_matches_sorted_offline_replay():
    """Cross-engine anchor: the columnar epoch pipeline (shared store,
    per-shard pools) must consume the exact RNG stream the sorted engine
    would, so a sorted offline replay reproduces it bit for bit."""
    seed = 21
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(160, 3, 6, scenario_rng)
    events = scenario_event_stream(
        scenario, stream_rng, withdraw_fraction=0.1
    )
    config = ServiceConfig(
        seed=seed, epoch_max_events=36, shard_workers=True
    )
    service = MechanismService(
        RIT(
            engine="columnar",
            rng_policy="per-type",
            round_budget="until-complete",
        ),
        scenario.job,
        config,
    )
    report = service.serve_stream(events)
    assert len(report.epochs) >= 3
    replayed = replay_outcomes(
        report.consumed,
        scenario.job,
        RIT(
            engine="sorted",
            rng_policy="per-type",
            round_budget="until-complete",
        ),
        seed=seed,
        policy=config.policy(),
    )
    problems = differential_check(
        report.outcomes(), [outcome for _, outcome in replayed]
    )
    assert problems == []


def test_differential_check_reports_mismatches():
    scenario_rng, stream_rng = spawn_seeds(5, 2)
    scenario = build_scenario(80, 2, 5, scenario_rng)
    events = scenario_event_stream(scenario, stream_rng)
    mech = RIT(rng_policy="per-type", round_budget="until-complete")
    service = MechanismService(
        mech, scenario.job, ServiceConfig(seed=5, epoch_max_events=40)
    )
    report = service.serve_stream(events)
    replayed = replay_outcomes(
        report.consumed,
        scenario.job,
        RIT(rng_policy="per-type", round_budget="until-complete"),
        seed=6,  # wrong root seed: outcomes must differ
        policy=service.config.policy(),
    )
    problems = differential_check(
        report.outcomes(), [outcome for _, outcome in replayed]
    )
    assert problems != []
