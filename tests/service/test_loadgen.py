"""Load generator determinism and the bench ``service`` section."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.devtools.bench import validate_bench_schema
from repro.service.events import AskSubmitted, ReferralEdge, Withdrawal
from repro.service.loadgen import (
    GRAPH_REGIMES,
    build_scenario,
    run_service_bench,
    scenario_event_stream,
)

BENCH_TINY = dict(
    users=400,
    types=2,
    tasks_per_type=6,
    seed=0,
    epoch_max_events=256,
    queue_size=512,
    withdraw_fraction=0.05,
)


class TestScenarioEventStream:
    def test_same_seed_same_stream(self):
        scenario = build_scenario(60, 3, 5, 1)
        assert scenario_event_stream(scenario, 7) == scenario_event_stream(
            scenario, 7
        )

    def test_different_seed_different_gaps(self):
        scenario = build_scenario(60, 3, 5, 1)
        a = scenario_event_stream(scenario, 7)
        b = scenario_event_stream(scenario, 8)
        assert [e.tick for e in a] != [e.tick for e in b]

    def test_referral_precedes_every_non_root_ask(self):
        scenario = build_scenario(60, 3, 5, 1)
        events = scenario_event_stream(scenario, 7)
        referred = set()
        for event in events:
            if isinstance(event, ReferralEdge):
                referred.add(event.child_id)
            elif isinstance(event, AskSubmitted):
                parent = scenario.tree.to_parent_map().get(event.user_id)
                if parent is not None and parent >= 0:
                    assert event.user_id in referred

    def test_ticks_non_decreasing(self):
        scenario = build_scenario(60, 3, 5, 1)
        events = scenario_event_stream(scenario, 7)
        ticks = [e.tick for e in events]
        assert ticks == sorted(ticks)

    def test_withdrawals_come_from_joined_users(self):
        scenario = build_scenario(60, 3, 5, 1)
        events = scenario_event_stream(scenario, 7, withdraw_fraction=0.2)
        joined = {e.user_id for e in events if isinstance(e, AskSubmitted)}
        leavers = [e.user_id for e in events if isinstance(e, Withdrawal)]
        assert leavers and set(leavers) <= joined
        assert len(set(leavers)) == len(leavers)  # without replacement

    def test_bad_withdraw_fraction_rejected(self):
        scenario = build_scenario(20, 2, 3, 1)
        with pytest.raises(ConfigurationError):
            scenario_event_stream(scenario, 7, withdraw_fraction=1.0)

    def test_bad_gap_rejected(self):
        scenario = build_scenario(20, 2, 3, 1)
        with pytest.raises(ConfigurationError):
            scenario_event_stream(scenario, 7, max_gap_ticks=-1)


class TestGraphRegimes:
    def test_cli_choices_match_the_registry(self):
        from repro.cli import _GRAPH_REGIME_NAMES

        assert set(_GRAPH_REGIME_NAMES) == set(GRAPH_REGIMES)

    def test_unknown_regime_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario(60, 3, 5, 1, graph="bipartite")

    @pytest.mark.parametrize("graph", sorted(GRAPH_REGIMES))
    def test_regimes_are_deterministic(self, graph):
        a = build_scenario(60, 3, 5, 1, graph=graph)
        b = build_scenario(60, 3, 5, 1, graph=graph)
        assert a.tree.to_parent_map() == b.tree.to_parent_map()

    def test_regime_changes_forest_not_population(self):
        default = build_scenario(60, 3, 5, 1)
        rewired = build_scenario(60, 3, 5, 1, graph="watts-strogatz")
        # Same spawned user RNG stream: identical profiles either way.
        assert rewired.truthful_asks().keys() == default.truthful_asks().keys()
        assert {
            uid: default.population[uid].cost for uid in default.truthful_asks()
        } == {
            uid: rewired.population[uid].cost for uid in rewired.truthful_asks()
        }
        assert rewired.tree.to_parent_map() != default.tree.to_parent_map()

    def test_twitter_regime_is_the_historical_default(self):
        named = build_scenario(60, 3, 5, 1, graph="twitter")
        default = build_scenario(60, 3, 5, 1)
        assert named.tree.to_parent_map() == default.tree.to_parent_map()


class TestAttackBench:
    def test_attack_run_emits_schema_valid_sentinel_section(self):
        section = run_service_bench(
            users=400, types=3, tasks_per_type=6, seed=5,
            epoch_max_events=32, withdraw_fraction=0.0,
            graph="watts-strogatz", attack="collusion", attack_epoch=5,
            attack_seed=202, min_events=0,
        )
        from repro.devtools.bench import _validate_sentinel_section

        sentinel = section["sentinel"]
        assert _validate_sentinel_section(sentinel) == []
        assert sentinel["detection_within_k"] is True
        entry = sentinel["attacks"][0]
        assert entry["kind"] == "collusion"
        assert entry["graph"] == "watts-strogatz"
        assert entry["schedule"]["seed"] == 202
        assert section["events"]["gated"] == 0

    def test_clean_run_has_no_sentinel_section(self):
        section = run_service_bench(**{**BENCH_TINY, "min_events": 0})
        assert "sentinel" not in section


class TestRunServiceBench:
    def test_tiny_run_emits_schema_valid_section(self):
        section = run_service_bench(**BENCH_TINY)
        # Validate through the real schema gate by mounting the section on
        # a minimal document the validator recognizes as service-bearing.
        errors = [
            e
            for e in validate_bench_schema(
                {"schema_version": 1, "service": section}
            )
            if e.startswith("service")
        ]
        assert errors == []
        assert section["events"]["generated"] >= 400
        assert section["epochs"]["count"] >= 1

    def test_min_events_floor_enforced(self):
        with pytest.raises(ConfigurationError):
            run_service_bench(**{**BENCH_TINY, "min_events": 10_000_000})

    def test_rejects_non_positive_users(self):
        with pytest.raises(ConfigurationError):
            run_service_bench(**{**BENCH_TINY, "users": 0})
