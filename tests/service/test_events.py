"""Structural validation and serialization of service events."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.types import Job
from repro.service.events import (
    AskSubmitted,
    ReferralEdge,
    Withdrawal,
    event_from_dict,
    event_to_dict,
    validate_event,
)
from repro.tree.incentive_tree import ROOT

JOB = Job([4, 3, 5])


class TestValidateEvent:
    def test_valid_ask(self):
        event = AskSubmitted(tick=0, user_id=7, task_type=1, capacity=2, value=3.5)
        assert validate_event(event, JOB) is None

    def test_negative_tick(self):
        event = AskSubmitted(tick=-1, user_id=0, task_type=0, capacity=1, value=1.0)
        assert "tick" in validate_event(event, JOB)

    def test_task_type_out_of_range(self):
        event = AskSubmitted(tick=0, user_id=0, task_type=3, capacity=1, value=1.0)
        assert "out of range" in validate_event(event, JOB)

    def test_ask_model_validation_surfaces(self):
        event = AskSubmitted(tick=0, user_id=0, task_type=0, capacity=0, value=1.0)
        assert validate_event(event, JOB) is not None

    def test_negative_user_id(self):
        event = AskSubmitted(tick=0, user_id=-2, task_type=0, capacity=1, value=1.0)
        assert "user_id" in validate_event(event, JOB)

    def test_valid_referral_including_root(self):
        assert validate_event(ReferralEdge(tick=0, parent_id=3, child_id=4), JOB) is None
        assert (
            validate_event(ReferralEdge(tick=0, parent_id=ROOT, child_id=4), JOB)
            is None
        )

    def test_self_referral(self):
        event = ReferralEdge(tick=0, parent_id=5, child_id=5)
        assert "self-referral" in validate_event(event, JOB)

    def test_parent_below_root(self):
        event = ReferralEdge(tick=0, parent_id=ROOT - 1, child_id=5)
        assert validate_event(event, JOB) is not None

    def test_valid_withdrawal(self):
        assert validate_event(Withdrawal(tick=3, user_id=1), JOB) is None

    def test_withdrawal_negative_user(self):
        assert validate_event(Withdrawal(tick=3, user_id=-1), JOB) is not None


class TestSerialization:
    @pytest.mark.parametrize(
        "event",
        [
            AskSubmitted(tick=2, user_id=7, task_type=1, capacity=2, value=3.25),
            ReferralEdge(tick=0, parent_id=ROOT, child_id=4),
            Withdrawal(tick=9, user_id=1),
        ],
    )
    def test_round_trip(self, event):
        data = event_to_dict(event)
        assert isinstance(data["kind"], str)
        assert event_from_dict(data) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            event_from_dict({"kind": "mystery", "tick": 0})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ModelError):
            event_from_dict({"kind": "ask", "tick": 0})

    def test_events_are_frozen(self):
        event = Withdrawal(tick=9, user_id=1)
        with pytest.raises(Exception):
            event.tick = 10
