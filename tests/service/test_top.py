"""`rit top` frame reconstruction and rendering (`repro.service.top`)."""

from repro.core.rit import RIT
from repro.core.rng import spawn_seeds
from repro.obs import Tracer
from repro.service import (
    MechanismService,
    ServiceConfig,
    build_scenario,
    frames_from_trace,
    render_frames,
    run_top,
    scenario_event_stream,
)


def traced_run(seed=0, users=100, types=3, tasks_per_type=5):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    events = scenario_event_stream(scenario, stream_rng)
    tracer = Tracer("top-test", seed=seed)
    mechanism = RIT(rng_policy="per-type", round_budget="until-complete")
    service = MechanismService(
        mechanism,
        scenario.job,
        ServiceConfig(seed=seed, epoch_max_events=32),
        tracer=tracer,
    )
    report = service.serve_stream(events)
    return tracer, service, report


class TestFramesFromTrace:
    def test_rebuilds_live_frames(self):
        tracer, service, report = traced_run()
        payload = frames_from_trace(tracer.events)
        assert payload["phase"] == "trace"
        live = service.telemetry.recent_frames()
        assert len(payload["frames"]) == len(live) == len(report.epochs)
        for rebuilt, frame in zip(payload["frames"], live):
            assert rebuilt["epoch"] == frame["epoch"]
            assert rebuilt["batch_events"] == frame["batch_events"]
            assert rebuilt["users"] == frame["users"]
            assert rebuilt["shards"] == frame["shards"]
            # The deterministic gauge surface survives the round trip.
            assert rebuilt["gauges"] == frame["gauges"]

    def test_slo_re_derived_through_same_histograms(self):
        tracer, service, _ = traced_run()
        payload = frames_from_trace(tracer.events)
        live = service.telemetry.slo_summary()
        for key in ("ingest", "epoch", "shard"):
            assert payload["slo"][key] == live[key]

    def test_empty_trace(self):
        payload = frames_from_trace([])
        assert payload["frames"] == []
        assert payload["slo"]["epochs_closed"] == 0


class TestRenderFrames:
    def test_table_contains_every_epoch_and_slo(self):
        tracer, _, report = traced_run()
        text = render_frames(frames_from_trace(tracer.events))
        lines = text.splitlines()
        assert "epoch" in lines[0] and "win@d1" in lines[0]
        # One row per epoch between header and the SLO footer.
        assert sum(
            1 for line in lines if line.strip().split() and
            line.strip().split()[0].isdigit()
        ) >= len(report.epochs)
        assert any(line.startswith("phase: trace") for line in lines)
        assert any("SLO" in line for line in lines)

    def test_empty_payload_renders_placeholder(self):
        text = render_frames({"frames": [], "phase": "serving"})
        assert "(no closed epochs yet)" in text


class TestRunTop:
    def test_requires_exactly_one_source(self, capsys):
        assert run_top() == 2
        assert run_top(url="http://x", trace="y") == 2
        assert "exactly one" in capsys.readouterr().out

    def test_renders_trace_file(self, tmp_path, capsys):
        tracer, _, report = traced_run()
        trace_path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(trace_path))
        assert run_top(trace=str(trace_path)) == 0
        out = capsys.readouterr().out
        assert "phase: trace" in out
        assert f"{report.epochs[-1].index:>5}" in out

    def test_unreadable_trace(self, tmp_path, capsys):
        assert run_top(trace=str(tmp_path / "missing.jsonl")) == 1
        assert "cannot read trace" in capsys.readouterr().out

    def test_unreachable_url(self, capsys):
        assert run_top(url="http://127.0.0.1:1") == 1
        assert "cannot reach" in capsys.readouterr().out
