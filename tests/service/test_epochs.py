"""Epoch batching triggers and the pure epoch-seed derivation."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.types import Job
from repro.service.epochs import (
    BatchAccumulator,
    EpochPipeline,
    EpochPolicy,
    epoch_seed,
)
from repro.service.events import AskSubmitted, Withdrawal

JOB = Job([4, 3, 5])


def ask(uid, tick):
    return AskSubmitted(
        tick=tick, user_id=uid, task_type=uid % JOB.num_types, capacity=2, value=1.0
    )


class TestEpochPolicy:
    def test_rejects_non_positive_max_events(self):
        with pytest.raises(ConfigurationError):
            EpochPolicy(max_events=0)

    def test_rejects_non_positive_max_ticks(self):
        with pytest.raises(ConfigurationError):
            EpochPolicy(max_events=4, max_ticks=0)


class TestBatchAccumulator:
    def test_count_trigger_includes_final_event(self):
        acc = BatchAccumulator(EpochPolicy(max_events=2))
        assert acc.append(ask(0, 0)) is None
        batch = acc.append(ask(1, 1))
        assert batch is not None
        assert [e.user_id for e in batch.events] == [0, 1]
        assert (batch.first_tick, batch.last_tick) == (0, 1)
        assert acc.pending_count == 0

    def test_tick_trigger_closes_before_the_event(self):
        acc = BatchAccumulator(EpochPolicy(max_events=100, max_ticks=5))
        acc.append(ask(0, 0))
        assert acc.maybe_close_on_tick(4) is None
        batch = acc.maybe_close_on_tick(5)
        assert batch is not None
        assert [e.user_id for e in batch.events] == [0]

    def test_tick_trigger_noop_when_empty(self):
        acc = BatchAccumulator(EpochPolicy(max_events=4, max_ticks=5))
        assert acc.maybe_close_on_tick(99) is None

    def test_flush_returns_trailing_partial_batch(self):
        acc = BatchAccumulator(EpochPolicy(max_events=10))
        acc.append(ask(0, 0))
        batch = acc.flush()
        assert batch is not None and batch.num_events == 1
        assert acc.flush() is None

    def test_indices_are_sequential(self):
        acc = BatchAccumulator(EpochPolicy(max_events=1))
        first = acc.append(ask(0, 0))
        second = acc.append(ask(1, 1))
        assert (first.index, second.index) == (0, 1)


class TestEpochSeed:
    def test_pure_function_of_both_integers(self):
        a = np.random.default_rng(epoch_seed(7, 3)).integers(0, 1 << 30, 8)
        b = np.random.default_rng(epoch_seed(7, 3)).integers(0, 1 << 30, 8)
        assert (a == b).all()

    def test_distinct_epochs_get_distinct_streams(self):
        a = np.random.default_rng(epoch_seed(7, 0)).integers(0, 1 << 30, 8)
        b = np.random.default_rng(epoch_seed(7, 1)).integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_no_hidden_spawn_counter(self):
        # Deriving epoch 0 must not perturb a later derivation of epoch 1.
        first = epoch_seed(7, 0)
        np.random.default_rng(first).integers(0, 10, 4)
        again = np.random.default_rng(epoch_seed(7, 1)).integers(0, 1 << 30, 8)
        fresh = np.random.default_rng(epoch_seed(7, 1)).integers(0, 1 << 30, 8)
        assert (again == fresh).all()

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            epoch_seed(7, -1)


class TestEpochPipeline:
    def test_snapshot_carries_cumulative_state_not_just_batch(self):
        pipeline = EpochPipeline(JOB, EpochPolicy(max_events=2))
        pipeline.step(ask(0, 0))
        pipeline.step(ask(1, 1))  # closes epoch 0
        pipeline.step(ask(2, 2))
        _, snapshots = pipeline.step(ask(3, 3))  # closes epoch 1
        assert len(snapshots) == 1
        assert sorted(snapshots[0].asks) == [0, 1, 2, 3]

    def test_refused_event_advances_virtual_clock(self):
        pipeline = EpochPipeline(JOB, EpochPolicy(max_events=100, max_ticks=5))
        pipeline.step(ask(0, 0))
        # A refused withdrawal (unknown user) at tick 9 must still close
        # the pending batch on the tick trigger...
        refused, snapshots = pipeline.step(Withdrawal(tick=9, user_id=77))
        assert refused is not None
        assert len(snapshots) == 1
        # ...and must not appear in any batch.
        assert [e.user_id for e in snapshots[0].batch.events] == [0]

    def test_tick_closed_epoch_excludes_the_closing_event(self):
        pipeline = EpochPipeline(JOB, EpochPolicy(max_events=100, max_ticks=5))
        pipeline.step(ask(0, 0))
        _, snapshots = pipeline.step(ask(1, 8))
        assert len(snapshots) == 1
        assert sorted(snapshots[0].asks) == [0]  # event 1 is next epoch
        tail = pipeline.finish()
        assert [e.user_id for e in tail.batch.events] == [1]

    def test_finish_empty_returns_none(self):
        pipeline = EpochPipeline(JOB, EpochPolicy(max_events=4))
        assert pipeline.finish() is None
