"""CLI coverage for ``rit serve``, ``rit loadgen`` and ``rit top``."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.smoke is False
        assert args.epoch_events == 64
        assert args.ledger is None
        assert args.metrics_port is None
        assert args.metrics_host == "127.0.0.1"
        assert args.probe_metrics is False

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.bench is False
        assert args.users == 26000
        assert args.min_events is None

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert args.url is None
        assert args.trace is None
        assert args.interval == 2.0
        assert args.once is False


class TestServe:
    def test_smoke_differential_gate_passes(self, capsys):
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "differential check OK" in out

    def test_smoke_writes_ledger_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "service_trace.jsonl"
        code = main(
            [
                "serve",
                "--smoke",
                "--ledger",
                str(tmp_path / "ledger"),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ledger ->" in out
        assert trace_path.exists()
        runs = list((tmp_path / "ledger").iterdir())
        assert len(runs) == 1
        assert (runs[0] / "epochs.jsonl").exists()
        assert (runs[0] / "meta.json").exists()

    def test_unsharded_smoke_matches(self, capsys):
        assert main(["serve", "--smoke", "--no-shard"]) == 0
        assert "differential check OK" in capsys.readouterr().out

    def test_smoke_with_metrics_probe(self, capsys):
        code = main(["serve", "--smoke", "--metrics-port", "0",
                     "--probe-metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics endpoint" in out
        assert "metrics probe OK" in out
        assert "differential check OK" in out

    def test_probe_requires_metrics_port(self, capsys):
        assert main(["serve", "--smoke", "--probe-metrics"]) == 2
        assert "--metrics-port" in capsys.readouterr().out


class TestTop:
    def test_renders_service_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "service_trace.jsonl"
        assert main(
            ["serve", "--smoke", "--trace-out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["top", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase: trace" in out
        assert "SLO" in out

    def test_requires_a_source(self, capsys):
        assert main(["top"]) == 2
        assert "exactly one" in capsys.readouterr().out


class TestLoadgen:
    def test_small_run_reports_throughput(self, capsys):
        code = main(
            [
                "loadgen",
                "--users", "400",
                "--types", "2",
                "--tasks-per-type", "6",
                "--epoch-events", "256",
                "--queue", "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "epoch latency" in out

    def test_bench_merges_service_section(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_RIT.json"
        code = main(
            [
                "loadgen",
                "--users", "400",
                "--types", "2",
                "--tasks-per-type", "6",
                "--epoch-events", "256",
                "--queue", "512",
                "--min-events", "0",
                "--bench",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["service"]["events"]["generated"] >= 400
        assert (
            doc["service"]["events"]["offered"]
            == doc["service"]["events"]["accepted"]
            + doc["service"]["events"]["invalid"]
            + doc["service"]["events"]["rejected"]
        )

    def test_bench_merges_service_slo_section(self, tmp_path, capsys):
        from repro.devtools.bench import _validate_service_slo_section

        out_path = tmp_path / "BENCH_RIT.json"
        code = main(
            [
                "loadgen",
                "--users", "400",
                "--types", "2",
                "--tasks-per-type", "6",
                "--epoch-events", "256",
                "--queue", "512",
                "--min-events", "0",
                "--bench",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "service_slo sections merged" in out
        assert "slo ingest" in out
        doc = json.loads(out_path.read_text())
        slo = doc["service_slo"]
        assert _validate_service_slo_section(slo) == []
        assert slo["epochs_closed"] == doc["service"]["epochs"]["count"]
        assert slo["epoch"]["count"] == slo["epochs_closed"]
