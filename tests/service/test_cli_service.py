"""CLI coverage for ``rit serve`` and ``rit loadgen``."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.smoke is False
        assert args.epoch_events == 64
        assert args.ledger is None

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.bench is False
        assert args.users == 26000
        assert args.min_events is None


class TestServe:
    def test_smoke_differential_gate_passes(self, capsys):
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "differential check OK" in out

    def test_smoke_writes_ledger_and_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "service_trace.jsonl"
        code = main(
            [
                "serve",
                "--smoke",
                "--ledger",
                str(tmp_path / "ledger"),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ledger ->" in out
        assert trace_path.exists()
        runs = list((tmp_path / "ledger").iterdir())
        assert len(runs) == 1
        assert (runs[0] / "epochs.jsonl").exists()
        assert (runs[0] / "meta.json").exists()

    def test_unsharded_smoke_matches(self, capsys):
        assert main(["serve", "--smoke", "--no-shard"]) == 0
        assert "differential check OK" in capsys.readouterr().out


class TestLoadgen:
    def test_small_run_reports_throughput(self, capsys):
        code = main(
            [
                "loadgen",
                "--users", "400",
                "--types", "2",
                "--tasks-per-type", "6",
                "--epoch-events", "256",
                "--queue", "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "epoch latency" in out

    def test_bench_merges_service_section(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_RIT.json"
        code = main(
            [
                "loadgen",
                "--users", "400",
                "--types", "2",
                "--tasks-per-type", "6",
                "--epoch-events", "256",
                "--queue", "512",
                "--min-events", "0",
                "--bench",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["service"]["events"]["generated"] >= 400
        assert (
            doc["service"]["events"]["offered"]
            == doc["service"]["events"]["accepted"]
            + doc["service"]["events"]["invalid"]
            + doc["service"]["events"]["rejected"]
        )
