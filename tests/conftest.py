"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rit import RIT
from repro.core.types import Ask, Job, Population, User
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads.scenarios import Scenario, paper_scenario
from repro.workloads.users import UserDistribution


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_job():
    """Three types, a handful of tasks each."""
    return Job([4, 3, 5])


@pytest.fixture
def small_population(rng):
    """Twelve users covering three types with mixed capacities/costs."""
    users = []
    for i in range(12):
        users.append(
            User(
                user_id=i,
                task_type=i % 3,
                capacity=1 + (i % 4),
                cost=0.5 + 0.75 * (i % 5),
            )
        )
    return Population(users)


@pytest.fixture
def small_tree(small_population):
    """A two-level tree over the small population.

    Layout: users 0..3 under the root; 4..7 under user (i-4); 8..11 under
    user (i-8).
    """
    tree = IncentiveTree()
    for i in range(4):
        tree.attach(i, ROOT)
    for i in range(4, 8):
        tree.attach(i, i - 4)
    for i in range(8, 12):
        tree.attach(i, i - 8)
    return tree


@pytest.fixture
def small_asks(small_population):
    return small_population.truthful_asks()


@pytest.fixture
def rit_until_complete():
    return RIT(h=0.8, round_budget="until-complete")


@pytest.fixture
def medium_scenario():
    """A 400-user paper-style scenario (deterministic)."""
    job = Job.uniform(5, 25)
    return paper_scenario(
        400, job, rng=777, distribution=UserDistribution(num_types=5)
    )
