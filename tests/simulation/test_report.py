"""Tests for the one-command reproduction report."""

import pytest

from repro.simulation.experiments import SMOKE_SCALE
from repro.simulation.report import FIGURE_SHAPES, ShapeCheck, generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            scale=SMOKE_SCALE,
            figures=["fig6b", "fig7b"],
            rng=5,
            charts=False,
        )

    def test_contains_figures_and_summary(self, report):
        assert "## fig6b" in report
        assert "## fig7b" in report
        assert "## Summary" in report
        assert "shape checks passed" in report

    def test_challenges_included_by_default(self, report):
        assert "design challenges" in report
        assert "Fig. 2" in report

    def test_checks_render_as_task_list(self, report):
        assert "- [x]" in report or "- [ ]" in report

    def test_charts_flag(self):
        with_charts = generate_report(
            scale=SMOKE_SCALE, figures=["fig6b"], rng=5, charts=True,
            include_challenges=False,
        )
        assert "* RIT" in with_charts  # chart legend marker

    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(
            scale=SMOKE_SCALE, figures=["fig7b"], rng=5, charts=False,
            include_challenges=False, path=path,
        )
        assert path.read_text() == text

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            generate_report(scale=SMOKE_SCALE, figures=["fig99"], rng=5)

    def test_figure_registry_is_complete(self):
        assert set(FIGURE_SHAPES) == {
            "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "fig9"
        }


class TestShapeCheck:
    def test_fields(self):
        check = ShapeCheck("desc", True)
        assert check.description == "desc"
        assert check.passed
