"""Tests for outcome narratives."""

import pytest

from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.simulation.explain import explain_outcome
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


@pytest.fixture(scope="module")
def completed_run():
    job = Job.uniform(3, 10)
    scenario = paper_scenario(
        200, job, rng=3, distribution=UserDistribution(num_types=3)
    )
    asks = scenario.truthful_asks()
    out = RIT(round_budget="until-complete").run(job, asks, scenario.tree, rng=3)
    assert out.completed
    return out, job, asks, scenario.tree


class TestCompletedNarrative:
    def test_headline(self, completed_run):
        out, job, asks, tree = completed_run
        text = explain_outcome(out, job, asks, tree)
        assert text.startswith("COMPLETED")
        assert f"all {job.size} tasks" in text

    def test_per_type_lines(self, completed_run):
        out, job, asks, tree = completed_run
        text = explain_outcome(out, job, asks, tree)
        for tau in job.types():
            assert f"τ{tau}:" in text

    def test_money_decomposition(self, completed_run):
        out, job, asks, tree = completed_run
        text = explain_outcome(out, job, asks, tree)
        assert "platform outlay" in text
        assert "solicitation" in text

    def test_top_sections(self, completed_run):
        out, job, asks, tree = completed_run
        text = explain_outcome(out, job, asks, tree, top=2)
        assert "top auction earners" in text
        # Each earner line names at most `top` users.
        earners_line = next(
            l for l in text.splitlines() if l.startswith("top auction earners")
        )
        assert earners_line.count("P") <= 2

    def test_recruiters_named_with_subtrees(self, completed_run):
        out, job, asks, tree = completed_run
        text = explain_outcome(out, job, asks, tree)
        if "top recruiters" in text:
            assert "recruits" in text

    def test_tree_optional(self, completed_run):
        out, job, asks, _ = completed_run
        text = explain_outcome(out, job, asks, None)
        assert "COMPLETED" in text


class TestVoidNarrative:
    def test_void_story(self):
        tree = IncentiveTree()
        tree.attach(0, ROOT)
        asks = {0: Ask(0, 1, 1.0)}
        job = Job([5])
        out = RIT(round_budget="until-complete").run(job, asks, tree, rng=0)
        assert not out.completed
        text = explain_outcome(out, job, asks, tree)
        assert text.startswith("VOID RUN")
        assert "Algorithm 3" in text
