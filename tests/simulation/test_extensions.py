"""Tests for the extension experiments (small scales)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.simulation.extensions import (
    coalition_sweep,
    h_sweep,
    supply_sweep,
    tree_shape_sweep,
)


class TestHSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return h_sweep(
            h_values=(0.5, 0.8, 0.95),
            num_users=1200,
            tasks_per_type=1000,
            num_types=3,
            reps=2,
            rng=10,
        )

    def test_series_present(self, result):
        names = {s.name for s in result.series}
        assert names == {
            "lemma round budget",
            "completion rate",
            "total payment (completed)",
        }

    def test_budget_decreases_with_h(self, result):
        budgets = result.get("lemma round budget").means
        assert budgets == sorted(budgets, reverse=True)

    def test_completion_rates_in_unit_interval(self, result):
        for m in result.get("completion rate").means:
            assert 0.0 <= m <= 1.0

    def test_h_validation(self):
        with pytest.raises(ConfigurationError):
            h_sweep(h_values=(0.0,), reps=1)


class TestCoalitionSweep:
    def test_structure_and_bounds(self):
        result = coalition_sweep(
            sizes=(1, 2),
            num_users=600,
            tasks_per_type=100,
            num_types=3,
            reps=5,
            trials=2,
            rng=11,
        )
        assert result.get("mean cartel gain").xs == [1, 2]
        bounds_ = result.get("Lemma 6.2 per-round bound").means
        assert bounds_ == sorted(bounds_, reverse=True)

    def test_markup_validation(self):
        with pytest.raises(ConfigurationError):
            coalition_sweep(markup=1.0)


class TestTreeShapeSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return tree_shape_sweep(
            num_users=250, tasks_per_type=12, num_types=4, reps=3, rng=12
        )

    def test_star_pays_no_referrals(self, result):
        assert result.get("referral share").value_at(0) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_chain_pays_less_than_social(self, result):
        shares = result.get("referral share")
        assert shares.value_at(1) < shares.value_at(3)

    def test_heights_match_shapes(self, result):
        heights = result.get("tree height")
        assert heights.value_at(0) == 1.0
        assert heights.value_at(1) == 250.0

    def test_referral_share_bounded_by_one(self, result):
        for m in result.get("referral share").means:
            assert -1e-9 <= m <= 1.0 + 1e-9


class TestSupplySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return supply_sweep(
            multipliers=(1.0, 2.0, 4.0),
            tasks_per_type=30,
            num_types=3,
            reps=4,
            rng=13,
        )

    def test_series_present(self, result):
        names = {s.name for s in result.series}
        assert names == {"completion rate", "avg clearing price (completed)"}

    def test_remark_61_threshold_completes(self, result):
        completion = result.get("completion rate")
        assert completion.value_at(2.0) >= 0.75
        assert completion.value_at(4.0) >= 0.75

    def test_parity_supply_struggles(self, result):
        """At supply == demand the consensus floor and the random winner
        subsampling leave tasks uncovered."""
        completion = result.get("completion rate")
        assert completion.value_at(1.0) <= completion.value_at(2.0)

    def test_prices_fall_with_supply(self, result):
        prices = result.get("avg clearing price (completed)")
        assert prices.value_at(4.0) <= prices.value_at(2.0) + 0.5

    def test_sub_demand_supply_rejected(self):
        with pytest.raises(ConfigurationError):
            supply_sweep(multipliers=(0.5,), reps=1)


class TestRecruitmentSweep:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.simulation.extensions import recruitment_sweep

        return recruitment_sweep(
            accept_probs=(0.3, 1.0),
            num_users=400,
            tasks_per_type=15,
            num_types=3,
            reps=3,
            rng=14,
        )

    def test_series_present(self, result):
        names = {s.name for s in result.series}
        assert names == {
            "time to supply threshold",
            "users recruited",
            "RIT completion rate",
        }

    def test_higher_uptake_is_faster(self, result):
        times = result.get("time to supply threshold")
        assert times.value_at(1.0) <= times.value_at(0.3)

    def test_completion_rates_valid(self, result):
        for m in result.get("RIT completion rate").means:
            assert 0.0 <= m <= 1.0

    def test_bad_prob_rejected(self):
        from repro.simulation.extensions import recruitment_sweep
        with pytest.raises(ConfigurationError):
            recruitment_sweep(accept_probs=(0.0,), reps=1)
