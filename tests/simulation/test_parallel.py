"""Tests for the parallel repetition runner."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.core.types import Job
from repro.simulation.parallel import run_repetitions_parallel
from repro.simulation.runner import run_repetitions
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def factory(gen):
    return paper_scenario(
        120, Job.uniform(3, 8), gen, distribution=UserDistribution(num_types=3)
    )


@pytest.fixture(scope="module")
def mechanism():
    return RIT(round_budget="until-complete")


class TestParallelRunner:
    def test_matches_serial_runner_exactly(self, mechanism):
        """Same root seed -> identical measurements, any worker count."""
        serial = run_repetitions(mechanism, factory, reps=4, rng=9)
        parallel = run_repetitions_parallel(
            mechanism, factory, reps=4, rng=9, workers=2
        )
        assert [m.total_payment for m in serial] == [
            m.total_payment for m in parallel
        ]
        assert [m.avg_utility for m in serial] == [
            m.avg_utility for m in parallel
        ]

    def test_single_worker_path(self, mechanism):
        a = run_repetitions_parallel(mechanism, factory, reps=3, rng=1, workers=1)
        b = run_repetitions_parallel(mechanism, factory, reps=3, rng=1, workers=2)
        assert [m.total_payment for m in a] == [m.total_payment for m in b]

    def test_order_is_by_repetition_index(self, mechanism):
        results = run_repetitions_parallel(
            mechanism, factory, reps=5, rng=3, workers=3
        )
        assert len(results) == 5
        # Prefix stability mirrors the serial runner's contract.
        shorter = run_repetitions_parallel(
            mechanism, factory, reps=3, rng=3, workers=3
        )
        assert [m.total_payment for m in shorter] == [
            m.total_payment for m in results[:3]
        ]

    def test_validation(self, mechanism):
        with pytest.raises(ConfigurationError):
            run_repetitions_parallel(mechanism, factory, reps=0, rng=0)
        with pytest.raises(ConfigurationError):
            run_repetitions_parallel(
                mechanism, factory, reps=1, rng=0, workers=0
            )
