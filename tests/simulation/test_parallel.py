"""Tests for the parallel repetition runner."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.core.types import Job
from repro.simulation.parallel import run_repetitions_parallel
from repro.simulation.runner import run_repetitions
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def factory(gen):
    return paper_scenario(
        120, Job.uniform(3, 8), gen, distribution=UserDistribution(num_types=3)
    )


@pytest.fixture(scope="module")
def mechanism():
    return RIT(round_budget="until-complete")


class TestParallelRunner:
    def test_matches_serial_runner_exactly(self, mechanism):
        """Same root seed -> identical measurements, any worker count."""
        serial = run_repetitions(mechanism, factory, reps=4, rng=9)
        parallel = run_repetitions_parallel(
            mechanism, factory, reps=4, rng=9, workers=2
        )
        assert [m.total_payment for m in serial] == [
            m.total_payment for m in parallel
        ]
        assert [m.avg_utility for m in serial] == [
            m.avg_utility for m in parallel
        ]

    def test_single_worker_path(self, mechanism):
        a = run_repetitions_parallel(mechanism, factory, reps=3, rng=1, workers=1)
        b = run_repetitions_parallel(mechanism, factory, reps=3, rng=1, workers=2)
        assert [m.total_payment for m in a] == [m.total_payment for m in b]

    def test_order_is_by_repetition_index(self, mechanism):
        results = run_repetitions_parallel(
            mechanism, factory, reps=5, rng=3, workers=3
        )
        assert len(results) == 5
        # Prefix stability mirrors the serial runner's contract.
        shorter = run_repetitions_parallel(
            mechanism, factory, reps=3, rng=3, workers=3
        )
        assert [m.total_payment for m in shorter] == [
            m.total_payment for m in results[:3]
        ]

    def test_validation(self, mechanism):
        with pytest.raises(ConfigurationError):
            run_repetitions_parallel(mechanism, factory, reps=0, rng=0)
        with pytest.raises(ConfigurationError):
            run_repetitions_parallel(
                mechanism, factory, reps=1, rng=0, workers=0
            )


class TestParallelTracing:
    """Merged worker traces are deterministic and schema-valid."""

    def _merged(self, mechanism, rng, reps=4, workers=2):
        from repro.obs import Tracer

        tracer = Tracer("merge", seed=rng, config={"reps": reps})
        run_repetitions_parallel(
            mechanism, factory, reps=reps, rng=rng, workers=workers,
            tracer=tracer,
        )
        return tracer

    def test_same_seed_reruns_merge_identically(self, mechanism):
        from repro.obs import canonical_events

        first = self._merged(mechanism, rng=9)
        second = self._merged(mechanism, rng=9)
        assert canonical_events(first.events) == canonical_events(second.events)

    def test_events_tagged_with_rep_and_worker(self, mechanism):
        tracer = self._merged(mechanism, rng=3, reps=3, workers=2)
        tagged = [e for e in tracer.events if "rep" in e]
        assert {e["rep"] for e in tagged} == {0, 1, 2}
        assert {e["w"] for e in tagged} <= {0, 1}
        # rep order is submission order, independent of pool scheduling
        order = []
        for event in tagged:
            if not order or order[-1] != event["rep"]:
                order.append(event["rep"])
        assert order == sorted(order)

    def test_merged_stream_is_schema_valid(self, mechanism):
        from repro.devtools.trace_schema import validate_trace_events

        tracer = self._merged(mechanism, rng=5, reps=3, workers=3)
        assert validate_trace_events(tracer.events) == []
        assert tracer.value("worker_traces_merged") == 3
        assert tracer.value("reps_completed") == 3

    def test_tracing_does_not_change_measurements(self, mechanism):
        from repro.obs import Tracer

        plain = run_repetitions_parallel(
            mechanism, factory, reps=3, rng=7, workers=2
        )
        traced = run_repetitions_parallel(
            mechanism, factory, reps=3, rng=7, workers=2,
            tracer=Tracer("merge", seed=7, config={}),
        )
        assert [m.total_payment for m in plain] == [
            m.total_payment for m in traced
        ]
