"""Tests for result containers."""

import math

import pytest

from repro.core.exceptions import ConfigurationError
from repro.simulation.results import ExperimentResult, Series, SeriesPoint, aggregate


class TestAggregate:
    def test_mean_std_n(self):
        p = aggregate(3.0, [1.0, 2.0, 3.0])
        assert p.x == 3.0
        assert p.mean == pytest.approx(2.0)
        assert p.std == pytest.approx(1.0)
        assert p.n == 3

    def test_single_sample_has_zero_std(self):
        p = aggregate(1.0, [5.0])
        assert p.std == 0.0
        assert p.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate(1.0, [])

    def test_stderr(self):
        p = aggregate(0.0, [0.0, 2.0, 0.0, 2.0])
        assert p.stderr == pytest.approx(p.std / 2.0)


class TestSeries:
    def _series(self, means):
        s = Series(name="test")
        for i, m in enumerate(means):
            s.add(i, [m])
        return s

    def test_xs_and_means(self):
        s = self._series([5.0, 3.0, 1.0])
        assert s.xs == [0, 1, 2]
        assert s.means == [5.0, 3.0, 1.0]

    def test_value_at(self):
        s = self._series([5.0, 3.0])
        assert s.value_at(1) == 3.0
        with pytest.raises(ConfigurationError):
            s.value_at(9)

    def test_monotone_decreasing(self):
        assert self._series([5.0, 3.0, 1.0]).is_monotone("decreasing")
        assert not self._series([1.0, 3.0]).is_monotone("decreasing")

    def test_monotone_with_tolerance(self):
        s = self._series([5.0, 5.2, 3.0])
        assert not s.is_monotone("decreasing")
        assert s.is_monotone("decreasing", tolerance=0.5)

    def test_monotone_direction_validation(self):
        with pytest.raises(ConfigurationError):
            self._series([1.0]).is_monotone("sideways")

    def test_endpoint_trend(self):
        assert self._series([1.0, 9.0, 4.0]).endpoint_trend() == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            Series(name="empty").endpoint_trend()


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult("figX", "Title", "x", "y", config={"a": 1})
        s = r.new_series("RIT")
        s.add(1, [2.0, 4.0])
        s.add(2, [1.0])
        r.new_series("other").add(1, [0.5])
        return r

    def test_get(self):
        r = self._result()
        assert r.get("RIT").value_at(2) == 1.0
        with pytest.raises(ConfigurationError):
            r.get("missing")

    def test_dict_round_trip(self):
        r = self._result()
        clone = ExperimentResult.from_dict(r.to_dict())
        assert clone.experiment_id == r.experiment_id
        assert clone.config == r.config
        assert clone.get("RIT").means == r.get("RIT").means
        assert clone.get("RIT").points[0].n == 2

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        r = self._result()
        r.save(path)
        clone = ExperimentResult.load(path)
        assert clone.to_dict() == r.to_dict()
