"""Tests for the repetition runner and metrics."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.core.outcome import MechanismOutcome
from repro.core.types import Job
from repro.simulation import metrics
from repro.simulation.runner import RunMeasurement, run_repetitions
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def factory(gen):
    return paper_scenario(
        150, Job.uniform(3, 10), gen, distribution=UserDistribution(num_types=3)
    )


class TestRunRepetitions:
    def test_count_and_types(self):
        mech = RIT(round_budget="until-complete")
        ms = run_repetitions(mech, factory, reps=3, rng=0)
        assert len(ms) == 3
        assert all(isinstance(m, RunMeasurement) for m in ms)

    def test_reps_validation(self):
        with pytest.raises(ConfigurationError):
            run_repetitions(RIT(), factory, reps=0, rng=0)

    def test_determinism(self):
        mech = RIT(round_budget="until-complete")
        a = run_repetitions(mech, factory, reps=2, rng=5)
        b = run_repetitions(mech, factory, reps=2, rng=5)
        assert [m.total_payment for m in a] == [m.total_payment for m in b]

    def test_prefix_stability(self):
        """Adding repetitions must not change earlier ones."""
        mech = RIT(round_budget="until-complete")
        short = run_repetitions(mech, factory, reps=2, rng=5)
        long = run_repetitions(mech, factory, reps=4, rng=5)
        assert [m.total_payment for m in short] == [
            m.total_payment for m in long[:2]
        ]

    def test_measurement_relationships(self):
        mech = RIT(round_budget="until-complete")
        for m in run_repetitions(mech, factory, reps=3, rng=1):
            if m.completed:
                assert m.total_payment >= m.total_auction_payment - 1e-9
                assert m.avg_utility >= m.avg_auction_utility - 1e-12
                assert m.running_time >= m.auction_running_time


class TestMetrics:
    def _outcome(self):
        return MechanismOutcome(
            allocation={1: 2},
            auction_payments={1: 6.0},
            payments={1: 7.5, 2: 0.5},
            completed=True,
            elapsed_auction=0.25,
            elapsed_total=0.3,
        )

    def test_average_utility(self):
        out = self._outcome()
        costs = {1: 2.0, 2: 1.0}
        assert metrics.average_utility(out, costs, 4) == pytest.approx(
            (8.0 - 4.0) / 4
        )

    def test_average_auction_utility(self):
        out = self._outcome()
        costs = {1: 2.0, 2: 1.0}
        assert metrics.average_auction_utility(out, costs, 4) == pytest.approx(
            (6.0 - 4.0) / 4
        )

    def test_totals_and_times(self):
        out = self._outcome()
        assert metrics.total_payment(out) == pytest.approx(8.0)
        assert metrics.total_auction_payment(out) == pytest.approx(6.0)
        assert metrics.running_time(out) == pytest.approx(0.3)
        assert metrics.auction_running_time(out) == pytest.approx(0.25)

    def test_no_handrolled_registry(self):
        """Run-internal tallies flow through repro.obs, not a metrics dict.

        The old ``METRICS`` registry is gone; the counter contract lives
        in the obs catalog, which must cover the runner's own counter.
        """
        from repro.obs.catalog import COUNTER_CATALOG

        assert not hasattr(metrics, "METRICS")
        assert "reps_completed" in COUNTER_CATALOG

    def test_runner_counts_reps(self):
        from repro.obs import Tracer

        tracer = Tracer("test-runner")
        mech = RIT(round_budget="until-complete")
        ms = run_repetitions(mech, factory, reps=3, rng=0, tracer=tracer)
        assert len(ms) == 3
        assert tracer.value("reps_completed") == 3
        assert tracer.value("mechanism_runs") == 3

    def test_traced_matches_untraced(self):
        from repro.obs import Tracer

        mech = RIT(round_budget="until-complete")
        plain = run_repetitions(mech, factory, reps=2, rng=7)
        traced = run_repetitions(
            mech, factory, reps=2, rng=7, tracer=Tracer("test-diff")
        )
        assert [m.total_payment for m in plain] == [
            m.total_payment for m in traced
        ]
