"""Smoke-scale tests for every reproduced figure.

Shape assertions here are deliberately loose (smoke scale is noisy); the
benchmark harness runs the tighter default-scale reproductions.
"""

import dataclasses

import pytest

from repro.simulation.experiments import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    active_scale,
    fig6a,
    fig6b,
    fig7a,
    fig7b,
    fig8a,
    fig8b,
    fig9,
)
from repro.core.exceptions import ConfigurationError


class TestScales:
    def test_paper_scale_matches_section_7(self):
        assert PAPER_SCALE.users_sweep[0] == 40000
        assert PAPER_SCALE.users_sweep[-1] == 80000
        assert PAPER_SCALE.tasks_per_type_a == 5000
        assert PAPER_SCALE.users_b == 30000
        assert PAPER_SCALE.tasks_sweep[0] == 1000
        assert PAPER_SCALE.tasks_sweep[-1] == 3000
        assert PAPER_SCALE.reps == 1000
        assert PAPER_SCALE.fig9_users == 10000
        assert PAPER_SCALE.fig9_victim_cost == 5.5
        assert PAPER_SCALE.fig9_victim_capacity == 17
        assert PAPER_SCALE.fig9_identity_counts == tuple(range(2, 18))
        assert PAPER_SCALE.fig9_ask_values == (5.5, 6.25, 6.5)

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        assert active_scale() is SMOKE_SCALE
        monkeypatch.setenv("RIT_SCALE", "paper")
        assert active_scale() is PAPER_SCALE
        monkeypatch.delenv("RIT_SCALE")
        assert active_scale() is DEFAULT_SCALE

    def test_active_scale_bad_env(self, monkeypatch):
        monkeypatch.setenv("RIT_SCALE", "galactic")
        with pytest.raises(ConfigurationError):
            active_scale()

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("RIT_SCALE", "paper")
        assert active_scale(SMOKE_SCALE) is SMOKE_SCALE


@pytest.fixture(scope="module")
def fig6a_result():
    return fig6a(SMOKE_SCALE, rng=11)


@pytest.fixture(scope="module")
def fig6b_result():
    return fig6b(SMOKE_SCALE, rng=12)


class TestFig6:
    def test_series_present(self, fig6a_result):
        names = {s.name for s in fig6a_result.series}
        assert {"RIT", "auction phase"} <= names

    def test_x_axis_matches_scale(self, fig6a_result):
        assert fig6a_result.get("RIT").xs == list(SMOKE_SCALE.users_sweep)

    def test_rit_at_least_auction_phase(self, fig6a_result):
        """Solicitation rewards only add: RIT utility >= auction utility."""
        rit = fig6a_result.get("RIT")
        auction = fig6a_result.get("auction phase")
        for x in rit.xs:
            assert rit.value_at(x) >= auction.value_at(x) - 1e-12

    def test_fig6a_utility_decreases_with_users(self, fig6a_result):
        """§7-C: more users -> fiercer competition -> lower utility."""
        rit = fig6a_result.get("RIT")
        assert rit.endpoint_trend() < 0

    def test_fig6b_utility_increases_with_tasks(self, fig6b_result):
        rit = fig6b_result.get("RIT")
        assert rit.endpoint_trend() > 0

    def test_fig6b_rit_above_auction(self, fig6b_result):
        rit = fig6b_result.get("RIT")
        auction = fig6b_result.get("auction phase")
        for x in rit.xs:
            assert rit.value_at(x) >= auction.value_at(x) - 1e-12


class TestFig7:
    def test_fig7b_payment_increases_with_tasks(self):
        result = fig7b(SMOKE_SCALE, rng=13)
        assert result.get("RIT").endpoint_trend() > 0

    def test_fig7a_rit_payment_bounded_by_twice_auction(self):
        """§7-C: the solicitation increment never exceeds the auction
        total."""
        result = fig7a(SMOKE_SCALE, rng=14)
        rit = result.get("RIT")
        auction = result.get("auction phase")
        for x in rit.xs:
            assert rit.value_at(x) <= 2 * auction.value_at(x) + 1e-9
            assert rit.value_at(x) >= auction.value_at(x) - 1e-9


class TestFig8:
    def test_running_time_series_positive(self):
        result = fig8a(SMOKE_SCALE, rng=15)
        for s in (result.get("RIT"), result.get("auction phase")):
            assert all(m > 0 for m in s.means)

    def test_total_time_at_least_auction_time(self):
        result = fig8b(SMOKE_SCALE, rng=16)
        rit = result.get("RIT")
        auction = result.get("auction phase")
        for x in rit.xs:
            assert rit.value_at(x) >= auction.value_at(x) - 1e-12


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        scale = dataclasses.replace(SMOKE_SCALE, fig9_reps=12)
        return fig9(scale, rng=17)

    def test_series_present(self, result):
        names = {s.name for s in result.series}
        assert names == {
            "ask=5.5",
            "ask=6.25",
            "ask=6.5",
            "honest (no sybil)",
        }

    def test_x_axis_is_identity_counts(self, result):
        assert result.get("ask=5.5").xs == list(SMOKE_SCALE.fig9_identity_counts)

    def test_honest_reference_is_constant(self, result):
        means = result.get("honest (no sybil)").means
        assert max(means) - min(means) < 1e-9

    def test_attacker_utility_trends_down_with_identities(self, result):
        """The headline of Fig. 9, at smoke tolerance."""
        for name in ("ask=5.5", "ask=6.25", "ask=6.5"):
            series = result.get(name)
            assert series.endpoint_trend() <= max(series.means) * 0.25

    def test_honest_not_dominated(self, result):
        """Sybil-proofness in expectation: the honest reference beats the
        average attack arm."""
        honest = result.get("honest (no sybil)").means[0]
        attack_means = [
            m
            for name in ("ask=5.5", "ask=6.25", "ask=6.5")
            for m in result.get(name).means
        ]
        avg_attack = sum(attack_means) / len(attack_means)
        assert honest >= avg_attack - 0.15 * abs(honest)


class TestCustomMechanismHook:
    def test_fig6a_accepts_custom_mechanism(self):
        """The figure harness runs any Mechanism — here the auction-only
        wrapper, whose RIT and auction-phase series coincide."""
        from repro.baselines import AuctionOnly
        from repro.core.rit import RIT

        mech = AuctionOnly(RIT(round_budget="until-complete"))
        result = fig6a(SMOKE_SCALE, rng=30, mechanism=mech)
        rit = result.get("RIT")
        auction = result.get("auction phase")
        for x in rit.xs:
            assert rit.value_at(x) == pytest.approx(auction.value_at(x))

    def test_fig9_accepts_custom_mechanism(self):
        import dataclasses

        from repro.core.rit import RIT

        scale = dataclasses.replace(
            SMOKE_SCALE, fig9_reps=2, fig9_identity_counts=(2,)
        )
        mech = RIT(h=0.8, round_budget="until-complete", decay=0.4)
        result = fig9(scale, rng=31, mechanism=mech)
        assert result.get("honest (no sybil)").points


class TestCombinedSweeps:
    def test_users_sweep_figures_match_individual_runs(self):
        """One shared sweep yields the same results as the standalone
        figure functions under the same seed."""
        from repro.simulation.experiments import users_sweep_figures

        combined = users_sweep_figures(SMOKE_SCALE, rng=40)
        assert set(combined) == {"fig6a", "fig7a", "fig8a"}
        standalone = fig6a(SMOKE_SCALE, rng=40)
        assert combined["fig6a"].get("RIT").means == pytest.approx(
            standalone.get("RIT").means
        )

    def test_tasks_sweep_figures_ids_and_axes(self):
        from repro.simulation.experiments import tasks_sweep_figures

        combined = tasks_sweep_figures(SMOKE_SCALE, rng=41)
        assert set(combined) == {"fig6b", "fig7b", "fig8b"}
        for result in combined.values():
            assert result.get("RIT").xs == list(SMOKE_SCALE.tasks_sweep)
            assert result.config["users"] == SMOKE_SCALE.users_b
