"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.core.exceptions import ConfigurationError
from repro.simulation.plotting import ascii_chart, render_result
from repro.simulation.results import ExperimentResult


class TestAsciiChart:
    def test_single_series_markers_present(self):
        chart = ascii_chart([("s", [0, 1, 2], [1.0, 2.0, 3.0])])
        assert "*" in chart
        assert "* s" in chart

    def test_two_series_distinct_markers(self):
        chart = ascii_chart(
            [
                ("a", [0, 1], [1.0, 2.0]),
                ("b", [0, 1], [2.0, 1.0]),
            ]
        )
        assert "* a" in chart
        assert "o b" in chart

    def test_axis_labels(self):
        chart = ascii_chart(
            [("s", [0, 10], [0.0, 5.0])], y_label="utility", x_label="users"
        )
        assert "utility" in chart
        assert "users" in chart
        assert "10" in chart

    def test_extremes_appear_in_y_labels(self):
        chart = ascii_chart([("s", [0, 1], [2.0, 8.0])])
        assert "2" in chart
        assert "8" in chart

    def test_flat_series_padded(self):
        chart = ascii_chart([("s", [0, 1, 2], [4.0, 4.0, 4.0])])
        assert "*" in chart  # does not divide by zero

    def test_nan_points_skipped(self):
        chart = ascii_chart([("s", [0, 1, 2], [1.0, math.nan, 3.0])])
        assert "*" in chart

    def test_monotone_series_rises_left_to_right(self):
        chart = ascii_chart([("s", [0, 1], [0.0, 1.0])], width=20, height=6)
        rows = [l for l in chart.splitlines() if "|" in l]
        first_row_with_marker = next(i for i, r in enumerate(rows) if "*" in r)
        last_row_with_marker = max(i for i, r in enumerate(rows) if "*" in r)
        # Higher values render on earlier (upper) rows; the right-end
        # point (y=1) must be above the left-end point (y=0).
        top = rows[first_row_with_marker]
        bottom = rows[last_row_with_marker]
        assert top.rindex("*") > bottom.index("*")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])
        with pytest.raises(ConfigurationError):
            ascii_chart([("s", [0], [1.0, 2.0])])
        with pytest.raises(ConfigurationError):
            ascii_chart([("s", [], [])])
        with pytest.raises(ConfigurationError):
            ascii_chart([("s", [0], [1.0])], width=5)
        with pytest.raises(ConfigurationError):
            ascii_chart([("s", [0], [math.nan])])


class TestRenderResult:
    def _result(self):
        r = ExperimentResult("figX", "Title", "n", "utility")
        a = r.new_series("RIT")
        a.add(10, [1.0])
        a.add(20, [2.0])
        b = r.new_series("completion rate")
        b.add(10, [1.0])
        b.add(20, [1.0])
        return r

    def test_header_and_series(self):
        text = render_result(self._result())
        assert "figX: Title" in text
        assert "* RIT" in text

    def test_completion_rate_excluded_by_default(self):
        text = render_result(self._result())
        assert "completion rate" not in text

    def test_explicit_series_selection(self):
        text = render_result(self._result(), series_names=["completion rate"])
        assert "completion rate" in text
