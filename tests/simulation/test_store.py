"""Tests for the result store and regression comparator."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.simulation.results import ExperimentResult
from repro.simulation.store import ResultStore, SeriesDrift, compare_results


def make_result(values, experiment_id="figX"):
    r = ExperimentResult(experiment_id, "t", "x", "y")
    s = r.new_series("RIT")
    for x, v in values:
        s.add(x, [v])
    return r


class TestCompareResults:
    def test_identical_results_have_no_drift(self):
        a = make_result([(1, 10.0), (2, 20.0)])
        b = make_result([(1, 10.0), (2, 20.0)])
        assert compare_results(a, b) == []

    def test_small_drift_within_tolerance(self):
        a = make_result([(1, 10.0)])
        b = make_result([(1, 11.0)])
        assert compare_results(a, b, tolerance=0.25) == []

    def test_large_drift_reported(self):
        a = make_result([(1, 10.0)])
        b = make_result([(1, 20.0)])
        drifts = compare_results(a, b, tolerance=0.25)
        assert len(drifts) == 1
        assert drifts[0].series == "RIT"
        assert drifts[0].relative == pytest.approx(0.5)

    def test_missing_series_is_full_drift(self):
        a = make_result([(1, 10.0)])
        b = ExperimentResult("figX", "t", "x", "y")
        b.new_series("other").add(1, [5.0])
        drifts = compare_results(a, b)
        assert {d.series for d in drifts} == {"RIT", "other"}

    def test_missing_x_is_drift(self):
        a = make_result([(1, 10.0), (2, 20.0)])
        b = make_result([(1, 10.0)])
        drifts = compare_results(a, b)
        assert [(d.series, d.x) for d in drifts] == [("RIT", 2)]

    def test_mismatched_experiments_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_results(make_result([(1, 1.0)]), make_result([(1, 1.0)], "figY"))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_results(make_result([(1, 1.0)]), make_result([(1, 1.0)]), tolerance=-1)


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result([(1, 10.0)])
        path = store.save(result, "baseline")
        assert path.exists()
        loaded = store.load("figX", "baseline")
        assert loaded.to_dict() == result.to_dict()

    def test_tags_and_experiments(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result([(1, 1.0)]), "a")
        store.save(make_result([(1, 2.0)]), "b")
        store.save(make_result([(1, 2.0)], "figY"), "a")
        assert store.tags("figX") == ["a", "b"]
        assert store.experiments() == ["figX", "figY"]
        assert store.tags("unknown") == []

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path).load("figX", "nope")

    def test_bad_tag_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.save(make_result([(1, 1.0)]), "../escape")

    def test_latest_returns_most_recent_save(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        old_path = store.save(make_result([(1, 1.0)]), "old")
        store.save(make_result([(1, 2.0)]), "new")
        # Force a strict mtime ordering regardless of clock resolution.
        stat = old_path.stat()
        os.utime(old_path, ns=(stat.st_atime_ns, stat.st_mtime_ns - 10_000_000))
        loaded = store.latest("figX")
        assert loaded.series[0].points[0].mean == 2.0

    def test_latest_ties_break_on_tag(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        path_a = store.save(make_result([(1, 1.0)]), "a")
        path_b = store.save(make_result([(1, 2.0)]), "b")
        stamp = path_a.stat().st_mtime_ns
        os.utime(path_a, ns=(stamp, stamp))
        os.utime(path_b, ns=(stamp, stamp))
        loaded = store.latest("figX")
        assert loaded.series[0].points[0].mean == 2.0

    def test_latest_missing_experiment_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path).latest("figX")

    def test_check_regression(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result([(1, 10.0)]), "baseline")
        drifts = store.check_regression(make_result([(1, 30.0)]), "baseline")
        assert len(drifts) == 1
        clean = store.check_regression(make_result([(1, 10.5)]), "baseline")
        assert clean == []


class TestSeriesDrift:
    def test_relative_guards_zero(self):
        drift = SeriesDrift("s", 1.0, 0.0, 0.0)
        assert drift.relative == 0.0
