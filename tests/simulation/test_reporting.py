"""Tests for plain-text result rendering."""

import pytest

from repro.simulation.reporting import (
    format_comparison_row,
    format_result,
    print_result,
)
from repro.simulation.results import ExperimentResult


def sample_result():
    r = ExperimentResult("figX", "A title", "n", "utility", config={"reps": 2})
    a = r.new_series("RIT")
    a.add(100, [1.0, 2.0])
    a.add(200, [0.5, 0.7])
    b = r.new_series("auction phase")
    b.add(100, [0.9])
    return r


class TestFormatResult:
    def test_contains_header_and_rows(self):
        text = format_result(sample_result())
        assert "figX" in text
        assert "A title" in text
        assert "RIT" in text
        assert "auction phase" in text
        assert "100" in text and "200" in text

    def test_stderr_shown_for_multi_sample_points(self):
        text = format_result(sample_result())
        assert "±" in text

    def test_stderr_suppressed(self):
        text = format_result(sample_result(), show_stderr=False)
        assert "±" not in text

    def test_missing_point_renders_dash(self):
        lines = format_result(sample_result()).splitlines()
        row_200 = next(l for l in lines if l.startswith("200"))
        assert "-" in row_200

    def test_series_selection(self):
        text = format_result(sample_result(), series_names=["RIT"])
        assert "auction phase" not in text

    def test_large_numbers_have_thousands_separator(self):
        r = ExperimentResult("f", "t", "x", "y")
        r.new_series("s").add(1, [123456.0])
        assert "123,456" in format_result(r)

    def test_nan_rendered(self):
        r = ExperimentResult("f", "t", "x", "y")
        r.new_series("s").add(1, [float("nan")])
        assert "nan" in format_result(r)

    def test_print_result(self, capsys):
        print_result(sample_result())
        assert "figX" in capsys.readouterr().out


class TestComparisonRow:
    def test_deviation_wins(self):
        row = format_comparison_row("case", 1.0, 2.0)
        assert "DEVIATION WINS" in row

    def test_honesty_holds(self):
        row = format_comparison_row("case", 2.0, 1.0)
        assert "honesty holds" in row
        assert "case" in row
