"""Golden-result regression tests.

Smoke-scale experiment results with pinned seeds are committed under
``tests/goldens/``; these tests regenerate them and compare.  Any change
to the mechanism's coin consumption, the workload generators, or the
aggregation pipeline shows up here as a drift — that is the point: such
changes must be *deliberate* (regenerate the goldens when they are).

Determinism rests on numpy's PCG64 stream stability, which numpy
guarantees across releases for the generator methods we use.
"""

from pathlib import Path

import pytest

from repro.simulation import SMOKE_SCALE, fig6a, fig6b, fig7a, fig7b
from repro.simulation.store import ResultStore, compare_results

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

CASES = {
    "fig6a": (fig6a, 1001),
    "fig6b": (fig6b, 1002),
    "fig7a": (fig7a, 1003),
    "fig7b": (fig7b, 1004),
}


@pytest.mark.parametrize("experiment_id", sorted(CASES))
def test_matches_golden(experiment_id):
    fn, seed = CASES[experiment_id]
    store = ResultStore(GOLDEN_DIR)
    golden = store.load(experiment_id, "golden")
    fresh = fn(SMOKE_SCALE, rng=seed)
    # Exclude timing series (host-dependent); everything else must match
    # to floating-point noise.
    comparable = [s for s in golden.series if "time" not in s.name]
    golden.series = comparable
    fresh.series = [s for s in fresh.series if "time" not in s.name]
    drifts = compare_results(golden, fresh, tolerance=1e-9)
    assert not drifts, "\n".join(str(d) for d in drifts)


def test_goldens_exist_for_every_case():
    store = ResultStore(GOLDEN_DIR)
    assert set(store.experiments()) >= set(CASES)
