"""Unit tests for the crowdsensing model value types."""

import math

import pytest

from repro.core.exceptions import ConfigurationError, ModelError
from repro.core.types import Ask, Job, Population, User


class TestJob:
    def test_counts_are_stored_as_tuple(self):
        job = Job([1, 2, 3])
        assert job.counts == (1, 2, 3)

    def test_num_types_and_size(self):
        job = Job([2, 0, 5])
        assert job.num_types == 3
        assert job.size == 7

    def test_size_is_cached_at_construction(self):
        job = Job([2, 0, 5])
        assert job._size == 7  # set once in __init__, no per-read sum
        import dataclasses

        replaced = dataclasses.replace(job, counts=(1, 1, 1))
        assert replaced.size == 3

    def test_tasks_of(self):
        job = Job([2, 0, 5])
        assert job.tasks_of(0) == 2
        assert job.tasks_of(1) == 0
        assert job.tasks_of(2) == 5

    def test_tasks_of_unknown_type_raises(self):
        with pytest.raises(ModelError):
            Job([1]).tasks_of(1)
        with pytest.raises(ModelError):
            Job([1]).tasks_of(-1)

    def test_types_iterates_all_indices(self):
        assert list(Job([1, 2]).types()) == [0, 1]

    def test_empty_job_rejected(self):
        with pytest.raises(ConfigurationError):
            Job([])

    def test_all_zero_job_rejected(self):
        with pytest.raises(ConfigurationError):
            Job([0, 0])

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Job([1, -1])

    def test_uniform_constructor(self):
        job = Job.uniform(4, 10)
        assert job.counts == (10, 10, 10, 10)

    def test_uniform_rejects_nonpositive_types(self):
        with pytest.raises(ConfigurationError):
            Job.uniform(0, 5)

    def test_from_multiset_matches_paper_example(self):
        # §3-A: J = {τ1, τ2, τ3, τ3} -> m=3, m_1=1, m_2=1, m_3=2.
        job = Job.from_multiset([0, 1, 2, 2])
        assert job.counts == (1, 1, 2)

    def test_from_multiset_with_explicit_num_types(self):
        job = Job.from_multiset([0], num_types=3)
        assert job.counts == (1, 0, 0)

    def test_from_multiset_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            Job.from_multiset([5], num_types=2)

    def test_multiset_round_trip(self):
        job = Job([2, 1, 3])
        assert Job.from_multiset(job.as_multiset(), job.num_types) == job

    def test_counts_are_coerced_to_int(self):
        job = Job([2.0, 3.0])
        assert job.counts == (2, 3)
        assert all(isinstance(c, int) for c in job.counts)


class TestAsk:
    def test_fields(self):
        ask = Ask(task_type=2, capacity=3, value=4.5)
        assert (ask.task_type, ask.capacity, ask.value) == (2, 3, 4.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ModelError):
            Ask(0, 0, 1.0)

    def test_fractional_capacity_rejected(self):
        with pytest.raises(ModelError):
            Ask(0, 1.5, 1.0)

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ModelError):
            Ask(0, 1, 0.0)
        with pytest.raises(ModelError):
            Ask(0, 1, -1.0)

    def test_nonfinite_value_rejected(self):
        with pytest.raises(ModelError):
            Ask(0, 1, math.inf)
        with pytest.raises(ModelError):
            Ask(0, 1, math.nan)

    def test_negative_type_rejected(self):
        with pytest.raises(ModelError):
            Ask(-1, 1, 1.0)

    def test_with_value_copies(self):
        ask = Ask(0, 2, 3.0)
        other = ask.with_value(5.0)
        assert other.value == 5.0
        assert other.capacity == 2
        assert ask.value == 3.0  # original untouched

    def test_with_capacity_copies(self):
        ask = Ask(0, 2, 3.0)
        assert ask.with_capacity(1).capacity == 1

    def test_is_hashable_and_frozen(self):
        ask = Ask(0, 1, 1.0)
        assert hash(ask) == hash(Ask(0, 1, 1.0))
        with pytest.raises(AttributeError):
            ask.value = 2.0  # type: ignore[misc]  # rit: noqa[RIT003]


class TestUser:
    def test_truthful_ask(self):
        user = User(user_id=3, task_type=1, capacity=4, cost=2.5)
        ask = user.truthful_ask()
        assert ask == Ask(task_type=1, capacity=4, value=2.5)

    def test_ask_with_deviation(self):
        user = User(0, 0, 4, 2.0)
        deviated = user.ask(capacity=2, value=9.0)
        assert (deviated.capacity, deviated.value) == (2, 9.0)

    def test_ask_cannot_exceed_true_capacity(self):
        user = User(0, 0, 4, 2.0)
        with pytest.raises(ModelError):
            user.ask(capacity=5)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ModelError):
            User(-1, 0, 1, 1.0)
        with pytest.raises(ModelError):
            User(0, -1, 1, 1.0)
        with pytest.raises(ModelError):
            User(0, 0, 0, 1.0)
        with pytest.raises(ModelError):
            User(0, 0, 1, 0.0)


class TestPopulation:
    def _pop(self):
        return Population(
            [
                User(0, 0, 2, 1.0),
                User(1, 1, 5, 2.0),
                User(2, 0, 3, 0.5),
            ]
        )

    def test_len_iter_contains(self):
        pop = self._pop()
        assert len(pop) == 3
        assert {u.user_id for u in pop} == {0, 1, 2}
        assert 1 in pop
        assert 7 not in pop

    def test_getitem(self):
        pop = self._pop()
        assert pop[1].capacity == 5
        with pytest.raises(ModelError):
            pop[9]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ModelError):
            Population([User(0, 0, 1, 1.0), User(0, 1, 1, 1.0)])

    def test_k_max(self):
        assert self._pop().k_max == 5

    def test_k_max_of_empty_population_raises(self):
        with pytest.raises(ModelError):
            Population([]).k_max

    def test_capacity_by_type(self):
        assert self._pop().capacity_by_type(3) == [5, 5, 0]

    def test_of_type(self):
        assert [u.user_id for u in self._pop().of_type(0)] == [0, 2]

    def test_truthful_asks(self):
        asks = self._pop().truthful_asks()
        assert set(asks) == {0, 1, 2}
        assert asks[2] == Ask(0, 3, 0.5)

    def test_subset(self):
        sub = self._pop().subset([2, 0])
        assert [u.user_id for u in sub] == [0, 2]

    def test_dense_ids(self):
        ids = self._pop().dense_ids()
        assert ids.tolist() == [0, 1, 2]
        assert ids.dtype.kind == "i"

    def test_dense_ids_empty_population(self):
        assert Population([]).dense_ids().tolist() == []

    def test_dense_ids_rejects_gaps(self):
        pop = Population(
            [User(0, 0, 2, 1.0), User(5, 1, 3, 2.0)]  # 5 breaks density
        )
        with pytest.raises(ModelError) as excinfo:
            pop.dense_ids()
        assert "not dense" in str(excinfo.value)

    def test_extended(self):
        pop = self._pop().extended([User(10, 2, 1, 1.0)])
        assert len(pop) == 4
        assert 10 in pop

    def test_extended_duplicate_rejected(self):
        with pytest.raises(ModelError):
            self._pop().extended([User(0, 2, 1, 1.0)])
