"""Unit + property tests for the consensus rounding primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import consensus
from repro.core.exceptions import ConfigurationError


class TestDrawOffset:
    def test_in_unit_interval(self):
        import numpy as np

        for seed in range(20):
            y = consensus.draw_offset(np.random.default_rng(seed))
            assert 0.0 <= y < 1.0

    def test_deterministic(self):
        assert consensus.draw_offset(5) == consensus.draw_offset(5)


class TestGridExponent:
    def test_exact_power_with_zero_offset(self):
        assert consensus.grid_exponent(8.0, 0.0) == 3

    def test_between_powers(self):
        assert consensus.grid_exponent(9.0, 0.0) == 3
        assert consensus.grid_exponent(15.99, 0.0) == 3
        assert consensus.grid_exponent(16.0, 0.0) == 4

    def test_offset_shifts_grid(self):
        # grid = {2^(z+0.5)}: 2^3.5 ≈ 11.31
        assert consensus.grid_exponent(11.0, 0.5) == 2
        assert consensus.grid_exponent(11.5, 0.5) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            consensus.grid_exponent(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            consensus.grid_exponent(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            consensus.grid_exponent(1.0, -0.1)


class TestRoundDown:
    def test_zero_and_negative_round_to_zero(self):
        assert consensus.round_down_to_grid(0.0, 0.3) == 0.0
        assert consensus.round_down_to_grid(-5.0, 0.3) == 0.0

    def test_round_down_is_at_most_value(self):
        for value in (1.0, 3.7, 100.0, 0.02):
            for offset in (0.0, 0.25, 0.99):
                assert consensus.round_down_to_grid(value, offset) <= value + 1e-12

    def test_round_down_on_grid_point_is_identity(self):
        value = 2.0 ** (4 + 0.25)
        assert consensus.round_down_to_grid(value, 0.25) == pytest.approx(value)

    def test_round_up(self):
        down = consensus.round_down_to_grid(9.0, 0.0)
        up = consensus.round_up_to_grid(9.0, 0.0)
        assert down == 8.0
        assert up == 16.0

    def test_round_up_on_grid_point_is_identity(self):
        assert consensus.round_up_to_grid(8.0, 0.0) == 8.0

    def test_round_up_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            consensus.round_up_to_grid(0.0, 0.0)

    @given(
        value=st.floats(min_value=1e-6, max_value=1e12),
        offset=st.floats(min_value=0.0, max_value=0.999999),
    )
    @settings(max_examples=200)
    def test_round_down_invariants(self, value, offset):
        down = consensus.round_down_to_grid(value, offset)
        assert 0 < down <= value * (1 + 1e-12)
        # The next grid point up must exceed the value.
        assert down * 2.0 > value * (1 - 1e-12)

    @given(
        value=st.floats(min_value=1e-6, max_value=1e12),
        offset=st.floats(min_value=0.0, max_value=0.999999),
    )
    @settings(max_examples=200)
    def test_grid_points_are_powers(self, value, offset):
        down = consensus.round_down_to_grid(value, offset)
        z = math.log2(down) - offset
        assert abs(z - round(z)) < 1e-9


class TestKConsensus:
    def test_zero_k_is_always_consensus(self):
        assert consensus.is_k_consensus(10.0, 0, 0.4)

    def test_consensus_when_no_grid_point_in_window(self):
        # grid with offset 0: ..., 8, 16, ...; window [12, 14] has none.
        assert consensus.is_k_consensus(14.0, 2.0, 0.0)

    def test_not_consensus_when_grid_point_inside_window(self):
        # window [7, 9] contains the grid point 8.
        assert not consensus.is_k_consensus(9.0, 2.0, 0.0)

    def test_collapsing_to_zero_is_never_consensus(self):
        assert not consensus.is_k_consensus(1.5, 2.0, 0.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            consensus.is_k_consensus(5.0, -1, 0.0)

    @given(
        value=st.floats(min_value=2.0, max_value=1e6),
        k=st.floats(min_value=0.0, max_value=1.0),
        offset=st.floats(min_value=0.0, max_value=0.999999),
    )
    @settings(max_examples=150)
    def test_consensus_means_identical_rounding_in_window(self, value, k, offset):
        if consensus.is_k_consensus(value, k, offset) and value - k > 0:
            a = consensus.round_down_to_grid(value - k, offset)
            b = consensus.round_down_to_grid(value, offset)
            assert a == b


class TestChangeProbability:
    def test_zero_k(self):
        assert consensus.change_probability(100.0, 0.0) == 0.0

    def test_k_at_least_value(self):
        assert consensus.change_probability(5.0, 5.0) == 1.0
        assert consensus.change_probability(5.0, 7.0) == 1.0

    def test_matches_log_formula(self):
        assert consensus.change_probability(100.0, 10.0) == pytest.approx(
            math.log2(100 / 90)
        )

    def test_monte_carlo_agreement(self):
        """The closed form matches the empirical non-consensus rate."""
        import numpy as np

        gen = np.random.default_rng(0)
        value, k = 64.0, 8.0
        misses = sum(
            not consensus.is_k_consensus(value, k, float(y))
            for y in gen.random(20000)
        )
        assert misses / 20000 == pytest.approx(
            consensus.change_probability(value, k), abs=0.01
        )
