"""Statistical tests of CRA's internal randomization (Lemma 6.2 events).

The Lemma 6.2 proof rests on three probabilistic facts about one CRA
round; each is checked empirically here:

* ``E_s``: an ask enters the sample with probability ``1/(q+m_i)``;
* the Bernoulli branch keeps ``(q+m_i)/2`` asks in expectation, so the
  overflow event ``E_o`` (more than ``q+m_i`` chosen) is rare (Chernoff);
* the consensus estimate ``n_s`` lies in ``(z_s/2, z_s]`` and is a
  2-point-supported random variable over the offset draw.
"""

import numpy as np
import pytest

from repro.core import consensus
from repro.core.cra import cra


class TestSampleRate:
    def test_sample_size_matches_rate(self):
        """Over many rounds, E[|S|] = W / (q + m_i)."""
        values = np.random.default_rng(0).uniform(0.1, 10, size=4000)
        q, m_i = 100, 100
        sizes = [
            cra(values, q, m_i, np.random.default_rng(seed)).sample_indices.size
            for seed in range(300)
        ]
        expected = len(values) / (q + m_i)
        assert np.mean(sizes) == pytest.approx(expected, rel=0.1)


class TestOverflowRarity:
    def test_overflow_event_is_rare(self):
        """Force the Bernoulli branch (huge z_s) and count E_o: by the
        Chernoff argument it occurs with probability <= e^{-(q+m_i)/8} —
        astronomically small here, so it should never fire."""
        # All asks cheap: any sampled price puts everything below s.
        values = np.full(5000, 0.5)
        q, m_i = 100, 100  # cap = 200; n_s up to ~5000 >> cap
        overflows = 0
        bernoulli_rounds = 0
        for seed in range(200):
            result = cra(values, q, m_i, np.random.default_rng(seed))
            if result.n_s > q + m_i:
                bernoulli_rounds += 1
                overflows += result.overflow_trimmed
        assert bernoulli_rounds > 100  # the branch actually executed
        assert overflows == 0

    def test_bernoulli_branch_keeps_half_cap_in_expectation(self):
        """E[#chosen] = (q+m_i)/2 inside the Bernoulli branch, visible as
        the winner count being ~q whenever n_s is huge (chosen >> q)."""
        values = np.full(5000, 0.5)
        q, m_i = 40, 40
        winner_counts = []
        for seed in range(150):
            result = cra(values, q, m_i, np.random.default_rng(seed))
            if result.n_s > q + m_i:
                winner_counts.append(result.num_winners)
        # (q+m_i)/2 = 40 chosen in expectation >= q=40 most rounds.
        assert np.mean(winner_counts) >= 0.8 * q


class TestConsensusEstimateDistribution:
    def test_n_s_within_half_octave(self):
        """n_s is z_s rounded down on the 2-grid: z_s/2 < n_s <= z_s."""
        gen = np.random.default_rng(1)
        for _ in range(300):
            z = float(gen.uniform(1.0, 1e6))
            y = float(gen.random())
            n = consensus.round_down_to_grid(z, y)
            assert z / 2.0 < n <= z * (1 + 1e-12)

    def test_log_gap_is_uniform(self):
        """For fixed z, log2(z / n_s(y)) is Uniform[0, 1) in the offset y
        — the randomization property the consensus argument needs (the
        grid point dodges any fixed half-octave window with the right
        probability)."""
        z = 1000.0
        gaps = [
            np.log2(z / consensus.round_down_to_grid(z, y))
            for y in np.linspace(0, 0.999999, 4000)
        ]
        hist, _ = np.histogram(gaps, bins=10, range=(0.0, 1.0))
        assert hist.sum() == len(gaps)
        # Each decile holds ~10% of the mass.
        assert np.all(np.abs(hist / len(gaps) - 0.1) < 0.02)

    def test_expected_log_gap_is_half(self):
        """E_y[log2(z) - log2(n_s)] = 1/2 — the rounding loses half a bit
        on average, uniformly in z."""
        gen = np.random.default_rng(2)
        gaps = []
        for _ in range(4000):
            z = float(gen.uniform(10, 1e5))
            y = float(gen.random())
            n = consensus.round_down_to_grid(z, y)
            gaps.append(np.log2(z) - np.log2(n))
        assert np.mean(gaps) == pytest.approx(0.5, abs=0.03)
