"""Property-based differential: columnar is bit-identical to sorted.

Hypothesis drives randomized populations — including duplicated ask
values (stressing the stable-order contract the RNG stream hinges on)
and withdrawal epochs where users leave and their subtrees are grafted
onto the grandparent, exactly as the service's state machine rewires the
referral forest.  For every instance and every seed the columnar engine
must reproduce the sorted engine's outcome byte for byte: completion,
allocation, prices, per-round logs, auction and final payments.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarStore
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


@st.composite
def withdrawal_instances(draw):
    """A random instance, optionally after a few withdrawal epochs."""
    num_types = draw(st.integers(min_value=1, max_value=4))
    tasks = draw(
        st.lists(
            st.integers(min_value=1, max_value=10),
            min_size=num_types,
            max_size=num_types,
        )
    )
    job = Job(tasks)

    num_users = draw(st.integers(min_value=2, max_value=60))
    # A coarse value grid produces many exact ties, so per-type ordering
    # is decided by the *stable* sort — the contract under test.
    tie_values = draw(st.booleans())
    tree = IncentiveTree()
    asks = {}
    for uid in range(num_users):
        parent = ROOT if uid == 0 else draw(
            st.sampled_from([ROOT] + list(range(uid)))
        )
        tree.attach(uid, parent)
        if tie_values:
            value = draw(st.sampled_from([0.5, 1.0, 2.0]))
        else:
            value = draw(
                st.floats(min_value=0.05, max_value=20.0, allow_nan=False)
            )
        asks[uid] = Ask(
            task_type=draw(st.integers(min_value=0, max_value=num_types - 1)),
            capacity=draw(st.integers(min_value=1, max_value=5)),
            value=value,
        )

    # Withdrawal epochs: graft the leaver's children onto its parent and
    # drop the ask — the service's _apply_withdrawal semantics.
    leavers = draw(
        st.lists(
            st.sampled_from(sorted(asks)),
            max_size=min(5, num_users - 1),
            unique=True,
        )
    )
    for uid in leavers:
        if len(asks) == 1:
            break
        tree.reattach_children(uid, tree.parent(uid))
        tree.remove_leaf(uid)
        del asks[uid]

    seed = draw(st.integers(min_value=0, max_value=2**31))
    return job, asks, tree, seed


def run_rounds(outcome):
    return [
        (
            r.task_type,
            r.round_index,
            r.q_before,
            r.num_winners,
            None if math.isnan(r.price) else r.price,
            r.n_s,
            r.overflow_trimmed,
        )
        for r in outcome.rounds
    ]


class TestColumnarDifferential:
    @given(instance=withdrawal_instances())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_sorted(self, instance):
        job, asks, tree, seed = instance
        baseline = RIT(round_budget="until-complete", engine="sorted").run(
            job, asks, tree, np.random.default_rng(seed)
        )
        columnar_mech = RIT(
            round_budget="until-complete", engine="columnar"
        )
        store = ColumnarStore.build(job, asks, tree)
        for run_kwargs in ({}, {"columnar_store": store}):
            out = columnar_mech.run(
                job,
                asks,
                tree,
                np.random.default_rng(seed),
                **run_kwargs,
            )
            prebuilt = "columnar_store" in run_kwargs
            context = f"seed {seed} prebuilt={prebuilt}"
            assert out.completed == baseline.completed, context
            assert out.allocation == baseline.allocation, context
            assert (
                out.auction_payments == baseline.auction_payments
            ), context
            assert out.payments == baseline.payments, context
            assert run_rounds(out) == run_rounds(baseline), context

    @given(instance=withdrawal_instances())
    @settings(max_examples=20, deadline=None)
    def test_paper_round_budget_agrees_too(self, instance):
        job, asks, tree, seed = instance
        outcomes = {
            engine: RIT(round_budget="paper", engine=engine).run(
                job, asks, tree, np.random.default_rng(seed)
            )
            for engine in ("sorted", "columnar")
        }
        assert (
            outcomes["columnar"].completed == outcomes["sorted"].completed
        )
        assert (
            outcomes["columnar"].allocation == outcomes["sorted"].allocation
        )
        assert (
            outcomes["columnar"].payments == outcomes["sorted"].payments
        )
        assert run_rounds(outcomes["columnar"]) == run_rounds(
            outcomes["sorted"]
        )
