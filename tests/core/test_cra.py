"""Tests for CRA (Algorithm 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cra import CRAResult, cra
from repro.core.exceptions import ConfigurationError


def run_cra(values, q, m_i, seed=0):
    return cra(np.asarray(values, dtype=float), q, m_i, np.random.default_rng(seed))


class TestValidation:
    def test_rejects_zero_q(self):
        with pytest.raises(ConfigurationError):
            run_cra([1.0], 0, 5)

    def test_rejects_zero_m_i(self):
        with pytest.raises(ConfigurationError):
            run_cra([1.0], 1, 0)

    def test_rejects_2d_values(self):
        with pytest.raises(ConfigurationError):
            cra(np.zeros((2, 2)), 1, 1)


class TestBasicBehaviour:
    def test_empty_ask_vector_yields_no_winners(self):
        result = run_cra([], 3, 3)
        assert result.num_winners == 0
        assert math.isnan(result.price)

    def test_determinism_under_same_seed(self):
        values = list(np.random.default_rng(1).uniform(0.1, 10, size=200))
        a = run_cra(values, 10, 10, seed=7)
        b = run_cra(values, 10, 10, seed=7)
        assert a.winners.tolist() == b.winners.tolist()
        assert a.price == b.price

    def test_never_allocates_more_than_q(self):
        values = list(np.random.default_rng(2).uniform(0.1, 10, size=500))
        for seed in range(30):
            result = run_cra(values, 7, 20, seed=seed)
            assert result.num_winners <= 7

    def test_winners_are_valid_indices(self):
        values = list(np.random.default_rng(3).uniform(0.1, 10, size=100))
        result = run_cra(values, 5, 10, seed=4)
        assert all(0 <= w < 100 for w in result.winners)
        assert len(set(result.winners.tolist())) == result.num_winners

    def test_winning_asks_do_not_exceed_price(self):
        """Lemma 6.1 core: every winner's ask value is at most the price."""
        values = list(np.random.default_rng(4).uniform(0.1, 10, size=300))
        arr = np.asarray(values)
        for seed in range(50):
            result = run_cra(values, 10, 15, seed=seed)
            if result.num_winners:
                assert np.all(arr[result.winners] <= result.price + 1e-12)

    def test_total_payment(self):
        values = [1.0] * 50
        for seed in range(20):
            result = run_cra(values, 5, 5, seed=seed)
            expected = 0.0 if result.num_winners == 0 else result.price * result.num_winners
            assert result.total_payment() == pytest.approx(expected)

    def test_price_is_a_submitted_value_or_nan(self):
        values = list(np.random.default_rng(5).uniform(0.1, 10, size=120))
        for seed in range(30):
            result = run_cra(values, 6, 9, seed=seed)
            if result.num_winners:
                assert result.price in values


class TestSampleRateScale:
    def test_default_matches_unit_scale(self):
        values = list(np.random.default_rng(6).uniform(0.1, 10, size=100))
        a = run_cra(values, 5, 10, seed=3)
        b = cra(
            np.asarray(values), 5, 10, np.random.default_rng(3),
            sample_rate_scale=1.0,
        )
        assert a.winners.tolist() == b.winners.tolist()
        assert a.price == b.price

    def test_larger_scale_samples_more(self):
        values = np.random.default_rng(7).uniform(0.1, 10, size=2000)
        small = np.mean([
            cra(values, 50, 50, np.random.default_rng(s)).sample_indices.size
            for s in range(60)
        ])
        large = np.mean([
            cra(values, 50, 50, np.random.default_rng(s),
                sample_rate_scale=4.0).sample_indices.size
            for s in range(60)
        ])
        assert large > 2.5 * small

    def test_rate_clamped_at_one(self):
        values = np.asarray([1.0, 2.0, 3.0])
        result = cra(values, 1, 1, np.random.default_rng(0),
                     sample_rate_scale=1e9)
        assert result.sample_indices.size == 3  # everything sampled

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            cra(np.asarray([1.0]), 1, 1, 0, sample_rate_scale=0.0)


class TestSingleAskEdgeCases:
    def test_single_ask_never_wins(self):
        """Degenerate supply: with z_s = 1 the consensus estimate rounds
        down to 2^(y-1) < 1, i.e. zero asks are chosen.  A type needs at
        least two priced-in asks to clear — the auction-side face of
        Remark 6.1's 2·m_i supply rule."""
        for seed in range(100):
            assert run_cra([2.0], 1, 1, seed=seed).num_winners == 0

    def test_two_asks_can_win(self):
        wins = 0
        for seed in range(200):
            result = run_cra([2.0, 3.0], 1, 1, seed=seed)
            if result.num_winners:
                wins += 1
                assert result.price >= 2.0
        assert 0 < wins < 200

    def test_all_equal_values(self):
        for seed in range(20):
            result = run_cra([3.0] * 40, 5, 5, seed=seed)
            if result.num_winners:
                assert result.price == 3.0


class TestStatisticalBehaviour:
    def test_cheap_asks_win_more_often(self):
        gen = np.random.default_rng(10)
        values = np.concatenate([np.full(50, 1.0), np.full(50, 9.0)])
        cheap_wins = expensive_wins = 0
        for seed in range(150):
            result = cra(values, 10, 10, np.random.default_rng(seed))
            cheap_wins += int(np.sum(result.winners < 50))
            expensive_wins += int(np.sum(result.winners >= 50))
        assert cheap_wins > 10 * max(1, expensive_wins)

    def test_usually_allocates_everything_with_ample_supply(self):
        """With supply >> demand and uniform values, most rounds fill q."""
        values = list(np.random.default_rng(11).uniform(0.1, 10, size=2000))
        filled = sum(
            run_cra(values, 20, 100, seed=seed).num_winners == 20
            for seed in range(40)
        )
        assert filled >= 20

    def test_overflow_path_reachable_and_consistent(self):
        """Force large n_s so the Bernoulli branch (and occasionally the
        overflow trim) executes; the invariants must still hold."""
        arr = np.full(5000, 0.5)
        arr[0] = 0.01  # guarantees z_s large when the cheap ask is sampled
        seen_bernoulli = False
        for seed in range(100):
            result = cra(arr, 3, 5, np.random.default_rng(seed))
            if result.n_s > 8:
                seen_bernoulli = True
            assert result.num_winners <= 3
            if result.num_winners:
                assert np.all(arr[result.winners] <= result.price + 1e-12)
        assert seen_bernoulli


class TestHypothesis:
    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=0, max_size=80
        ),
        q=st.integers(min_value=1, max_value=20),
        m_i=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, values, q, m_i, seed):
        arr = np.asarray(values, dtype=float)
        result = cra(arr, q, m_i, np.random.default_rng(seed))
        assert result.num_winners <= min(q, len(values))
        assert len(set(result.winners.tolist())) == result.num_winners
        if result.num_winners:
            assert np.all(arr[result.winners] <= result.price + 1e-9)
            assert result.price in values
        assert 0.0 <= result.offset < 1.0
