"""Tests for the Fenwick tree backing the sorted auction engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.core.fenwick import FenwickTree


def linear_locate(counts, j):
    """Reference for ``locate``: scan the cumulative sum."""
    running = 0
    for i, c in enumerate(counts):
        if running + c >= j:
            return i, j - running
        running += c
    raise AssertionError("j out of range")


class TestConstruction:
    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            FenwickTree(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            FenwickTree(np.array([1, -1, 2]))

    def test_empty_tree(self):
        tree = FenwickTree(np.empty(0, dtype=np.int64))
        assert len(tree) == 0
        assert tree.total == 0
        assert tree.prefix(0) == 0

    def test_build_matches_cumsum(self):
        counts = np.array([3, 0, 5, 1, 0, 0, 7, 2])
        tree = FenwickTree(counts)
        cumulative = np.cumsum(counts)
        assert tree.prefix(0) == 0
        for k in range(1, counts.size + 1):
            assert tree.prefix(k) == cumulative[k - 1]
        assert tree.total == int(counts.sum())


class TestMutation:
    def test_add_and_get(self):
        counts = np.array([2, 4, 0, 1])
        tree = FenwickTree(counts)
        tree.add(1, -3)
        tree.add(2, 5)
        expected = np.array([2, 1, 5, 1])
        assert np.array_equal(tree.to_array(), expected)
        assert tree.total == int(expected.sum())
        for i, value in enumerate(expected):
            assert tree.get(i) == value

    def test_bounds_checks(self):
        tree = FenwickTree(np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            tree.prefix(3)
        with pytest.raises(ConfigurationError):
            tree.prefix(-1)
        with pytest.raises(ConfigurationError):
            tree.add(2, 1)
        with pytest.raises(ConfigurationError):
            tree.locate(0)
        with pytest.raises(ConfigurationError):
            tree.locate(4)


class TestLocate:
    def test_locate_matches_linear_scan(self):
        counts = np.array([0, 3, 0, 0, 2, 1, 0, 4])
        tree = FenwickTree(counts)
        for j in range(1, int(counts.sum()) + 1):
            assert tree.locate(j) == linear_locate(counts, j)

    def test_locate_single_entry(self):
        tree = FenwickTree(np.array([5]))
        assert tree.locate(1) == (0, 1)
        assert tree.locate(5) == (0, 5)

    @settings(max_examples=100, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=6), min_size=1, max_size=40
        ),
        data=st.data(),
    )
    def test_locate_and_prefix_properties(self, counts, data):
        arr = np.array(counts, dtype=np.int64)
        tree = FenwickTree(arr)
        cumulative = np.cumsum(arr)
        k = data.draw(st.integers(min_value=0, max_value=arr.size))
        assert tree.prefix(k) == (0 if k == 0 else int(cumulative[k - 1]))
        if tree.total:
            j = data.draw(st.integers(min_value=1, max_value=tree.total))
            pos, rem = tree.locate(j)
            assert (pos, rem) == linear_locate(counts, j)
            assert 1 <= rem <= arr[pos]

    @settings(max_examples=60, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=25
        ),
        updates=st.lists(st.integers(min_value=0, max_value=24), max_size=10),
    )
    def test_add_keeps_prefixes_consistent(self, counts, updates):
        arr = np.array(counts, dtype=np.int64)
        tree = FenwickTree(arr)
        shadow = arr.copy()
        for raw in updates:
            i = raw % arr.size
            delta = 1 if shadow[i] == 0 else -1
            tree.add(i, delta)
            shadow[i] += delta
        assert np.array_equal(tree.to_array(), shadow)
        assert tree.total == int(shadow.sum())
