"""Tests for Extract (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ModelError
from repro.core.extract import UnitAsks, extract
from repro.core.types import Ask


class TestPaperExample:
    def test_section_5b_worked_example(self):
        """A = ((τ1,2,3); (τ2,3,4); (τ1,4,2)) -> α=(3,3,2,2,2,2)."""
        asks = {
            1: Ask(0, 2, 3.0),
            2: Ask(1, 3, 4.0),
            3: Ask(0, 4, 2.0),
        }
        unit = extract(0, asks)
        assert unit.values.tolist() == [3.0, 3.0, 2.0, 2.0, 2.0, 2.0]
        assert unit.owners.tolist() == [1, 1, 3, 3, 3, 3]

    def test_other_type(self):
        asks = {1: Ask(0, 2, 3.0), 2: Ask(1, 3, 4.0)}
        unit = extract(1, asks)
        assert unit.values.tolist() == [4.0, 4.0, 4.0]
        assert unit.owners.tolist() == [2, 2, 2]

    def test_empty_type(self):
        asks = {1: Ask(0, 2, 3.0)}
        unit = extract(5, asks)
        assert len(unit) == 0


class TestCapacitiesOverride:
    def test_remaining_capacity_shrinks_expansion(self):
        asks = {1: Ask(0, 3, 2.0), 2: Ask(0, 2, 5.0)}
        unit = extract(0, asks, capacities={1: 1, 2: 2})
        assert unit.values.tolist() == [2.0, 5.0, 5.0]
        assert unit.owners.tolist() == [1, 2, 2]

    def test_zero_capacity_drops_user(self):
        asks = {1: Ask(0, 3, 2.0)}
        unit = extract(0, asks, capacities={1: 0})
        assert len(unit) == 0

    def test_missing_key_defaults_to_full_capacity(self):
        asks = {1: Ask(0, 3, 2.0)}
        unit = extract(0, asks, capacities={})
        assert len(unit) == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            extract(0, {1: Ask(0, 3, 2.0)}, capacities={1: -1})

    def test_capacity_above_claim_rejected(self):
        with pytest.raises(ModelError):
            extract(0, {1: Ask(0, 3, 2.0)}, capacities={1: 4})


class TestUnitAsks:
    def test_owner_of_and_capacity_of(self):
        unit = extract(0, {4: Ask(0, 2, 1.0), 9: Ask(0, 1, 3.0)})
        assert unit.owner_of(0) == 4
        assert unit.owner_of(2) == 9
        assert unit.capacity_of(4) == 2
        assert unit.capacity_of(9) == 1
        assert unit.capacity_of(123) == 0

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ModelError):
            UnitAsks(0, np.zeros(3), np.zeros(2, dtype=np.int64))


class TestOrderingAndInvariance:
    def test_users_scanned_in_profile_order(self):
        """Extraction follows the profile's iteration (join) order, which
        the attack harness exploits to keep splits positionally aligned."""
        asks = {9: Ask(0, 1, 9.0), 1: Ask(0, 1, 1.0), 5: Ask(0, 1, 5.0)}
        unit = extract(0, asks)
        assert unit.owners.tolist() == [9, 1, 5]

    def test_split_invariance_lemma_64(self):
        """Lemma 6.4's auction-phase argument: splitting a user into
        identities with the same ask value leaves the unit-ask multiset
        unchanged."""
        whole = {1: Ask(0, 5, 3.0), 2: Ask(0, 2, 4.0)}
        split = {
            2: Ask(0, 2, 4.0),
            10: Ask(0, 2, 3.0),
            11: Ask(0, 1, 3.0),
            12: Ask(0, 2, 3.0),
        }
        a = sorted(extract(0, whole).values.tolist())
        b = sorted(extract(0, split).values.tolist())
        assert a == b

    @given(
        profile=st.dictionaries(
            keys=st.integers(min_value=0, max_value=50),
            values=st.tuples(
                st.integers(min_value=0, max_value=3),      # task type
                st.integers(min_value=1, max_value=6),      # capacity
                st.floats(min_value=0.01, max_value=100.0), # value
            ),
            min_size=0,
            max_size=12,
        ),
        tau=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100)
    def test_expansion_accounting(self, profile, tau):
        asks = {uid: Ask(t, k, v) for uid, (t, k, v) in profile.items()}
        unit = extract(tau, asks)
        expected = sum(a.capacity for a in asks.values() if a.task_type == tau)
        assert len(unit) == expected
        for uid, ask in asks.items():
            if ask.task_type == tau:
                assert unit.capacity_of(uid) == ask.capacity
                mask = unit.owners == uid
                assert np.all(unit.values[mask] == ask.value)
