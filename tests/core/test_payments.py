"""Tests for the payment determination phase (Algorithm 3 line 24)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import TreeError
from repro.core.payments import tree_payments, tree_payments_naive
from repro.tree.incentive_tree import ROOT, IncentiveTree


def make_tree(edges):
    tree = IncentiveTree()
    for parent, child in edges:
        tree.attach(child, parent)
    return tree


class TestHandComputedCases:
    def test_leaf_only_gets_auction_payment(self):
        tree = make_tree([(ROOT, 1)])
        p = tree_payments(tree, {1: 10.0}, {1: 0})
        assert p[1] == pytest.approx(10.0)

    def test_parent_earns_half_power_depth_of_descendant(self):
        # root -> 1 -> 2; node 2 at depth 2 contributes (1/2)^2 * 8 = 2.
        tree = make_tree([(ROOT, 1), (1, 2)])
        p = tree_payments(tree, {1: 0.0, 2: 8.0}, {1: 0, 2: 1})
        assert p[1] == pytest.approx(2.0)
        assert p[2] == pytest.approx(8.0)

    def test_same_type_descendants_excluded(self):
        tree = make_tree([(ROOT, 1), (1, 2)])
        p = tree_payments(tree, {1: 0.0, 2: 8.0}, {1: 1, 2: 1})
        assert p[1] == pytest.approx(0.0)

    def test_own_payment_plus_referrals(self):
        # root -> 1 -> {2, 3}; depths: 1:1, 2:2, 3:2.
        tree = make_tree([(ROOT, 1), (1, 2), (1, 3)])
        pays = {1: 4.0, 2: 8.0, 3: 12.0}
        types = {1: 0, 2: 1, 3: 2}
        p = tree_payments(tree, pays, types)
        assert p[1] == pytest.approx(4.0 + 0.25 * 8.0 + 0.25 * 12.0)

    def test_deep_chain_weights(self):
        # root -> 1 -> 2 -> 3 -> 4, alternating types.
        tree = make_tree([(ROOT, 1), (1, 2), (2, 3), (3, 4)])
        pays = {1: 0.0, 2: 0.0, 3: 0.0, 4: 16.0}
        types = {1: 0, 2: 1, 3: 0, 4: 1}
        p = tree_payments(tree, pays, types)
        # node 4 at depth 4 contributes (1/2)^4*16 = 1 to ancestors of
        # other types (nodes 1 and 3), nothing to node 2 (same type).
        assert p[3] == pytest.approx(1.0)
        assert p[2] == pytest.approx(0.0)
        assert p[1] == pytest.approx(1.0)

    def test_weight_depends_on_descendant_depth_not_distance(self):
        """The paper's weight is (1/2)^{r_i} with r_i the descendant's
        absolute depth — two ancestors of different heights receive the
        SAME contribution from one descendant."""
        tree = make_tree([(ROOT, 1), (1, 2), (2, 3)])
        pays = {1: 0.0, 2: 0.0, 3: 8.0}
        types = {1: 0, 2: 1, 3: 2}
        p = tree_payments(tree, pays, types)
        assert p[1] == pytest.approx(8.0 / 8)
        assert p[2] == pytest.approx(8.0 / 8)

    def test_missing_auction_payment_treated_as_zero(self):
        tree = make_tree([(ROOT, 1), (1, 2)])
        p = tree_payments(tree, {}, {1: 0, 2: 1})
        assert p == {1: 0.0, 2: 0.0}

    def test_missing_type_raises(self):
        tree = make_tree([(ROOT, 1)])
        with pytest.raises(TreeError):
            tree_payments(tree, {1: 1.0}, {})

    def test_empty_tree(self):
        assert tree_payments(IncentiveTree(), {}, {}) == {}

    def test_bad_decay_rejected(self):
        tree = make_tree([(ROOT, 1)])
        for decay in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(TreeError):
                tree_payments(tree, {1: 1.0}, {1: 0}, decay=decay)

    def test_custom_decay(self):
        tree = make_tree([(ROOT, 1), (1, 2)])
        p = tree_payments(tree, {2: 9.0}, {1: 0, 2: 1}, decay=1.0 / 3.0)
        assert p[1] == pytest.approx(9.0 / 9.0)


class TestBudgetBound:
    def test_referral_outlay_bounded_by_auction_total(self):
        """§7-C: Σ_j (p_j − p^A_j) <= Σ_j p^A_j."""
        gen = np.random.default_rng(0)
        for trial in range(20):
            n = int(gen.integers(2, 60))
            tree = IncentiveTree()
            for node in range(n):
                parent = ROOT if node == 0 else int(gen.integers(-1, node))
                tree.attach(node, parent if parent >= 0 else ROOT)
            pays = {i: float(gen.uniform(0, 10)) for i in range(n)}
            types = {i: int(gen.integers(0, 4)) for i in range(n)}
            p = tree_payments(tree, pays, types)
            referral = sum(p.values()) - sum(pays.values())
            assert referral <= sum(pays.values()) + 1e-9
            assert referral >= -1e-9


class TestDifferentialAgainstNaive:
    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
        decay=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=120, deadline=None)
    def test_fast_matches_naive(self, n, seed, decay):
        gen = np.random.default_rng(seed)
        tree = IncentiveTree()
        for node in range(n):
            parent = ROOT if node == 0 else int(gen.integers(-1, node))
            tree.attach(node, parent if parent >= 0 else ROOT)
        pays = {i: float(gen.uniform(0, 10)) for i in range(n)}
        types = {i: int(gen.integers(0, 3)) for i in range(n)}
        fast = tree_payments(tree, pays, types, decay=decay)
        naive = tree_payments_naive(tree, pays, types, decay=decay)
        assert set(fast) == set(naive)
        for node in fast:
            assert fast[node] == pytest.approx(naive[node], rel=1e-9, abs=1e-9)


class TestSybilMonotonicity:
    """The deterministic half of Lemma 6.4, at the payment-rule level."""

    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
        chain_len=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_chain_split_never_gains(self, n, seed, chain_len):
        """Replacing a node with a chain of same-type identities (auction
        payments held fixed, as Lemma 6.4 establishes for equal ask
        values) never increases the identities' total payment."""
        gen = np.random.default_rng(seed)
        tree = IncentiveTree()
        for node in range(n):
            parent = ROOT if node == 0 else int(gen.integers(-1, node))
            tree.attach(node, parent if parent >= 0 else ROOT)
        pays = {i: float(gen.uniform(0, 10)) for i in range(n)}
        types = {i: int(gen.integers(0, 3)) for i in range(n)}
        victim = int(gen.integers(0, n))

        honest = tree_payments(tree, pays, types)[victim]

        # Build the attacked tree: chain of identities replacing victim;
        # the victim's auction payment lands on one random identity (the
        # equal-ask-value case: the total is preserved, its position on the
        # chain is arbitrary).
        ids = [n + i for i in range(chain_len)]
        attacked = tree.copy()
        parent = attacked.parent(victim)
        attacked.attach(ids[0], parent)
        for a, b in zip(ids, ids[1:]):
            attacked.attach(b, a)
        for child in list(attacked.children(victim)):
            attacked.reattach(child, ids[-1])
        attacked.remove_leaf(victim)

        new_pays = dict(pays)
        paid_identity = ids[int(gen.integers(0, chain_len))]
        new_pays[paid_identity] = new_pays.pop(victim)
        new_types = dict(types)
        vt = new_types.pop(victim)
        for i in ids:
            new_types[i] = vt

        attacked_payments = tree_payments(attacked, new_pays, new_types)
        total = sum(attacked_payments[i] for i in ids)
        assert total <= honest + 1e-9

    def test_theorem4_payment_level(self):
        """Theorem 4 at the payment rule: attaching a newcomer with
        positive auction payment (a) never reduces any existing payment,
        and (b) benefits an other-type solicitor most when the newcomer
        is its own child rather than deeper in its subtree or elsewhere."""
        import numpy as np

        gen = np.random.default_rng(7)
        for _ in range(30):
            n = int(gen.integers(3, 15))
            tree = IncentiveTree()
            for node in range(n):
                parent = ROOT if node == 0 else int(gen.integers(-1, node))
                tree.attach(node, parent if parent >= 0 else ROOT)
            pays = {i: float(gen.uniform(0, 10)) for i in range(n)}
            types = {i: int(gen.integers(0, 3)) for i in range(n)}
            before = tree_payments(tree, pays, types)

            solicitor = int(gen.integers(0, n))
            newcomer = n
            new_pay = float(gen.uniform(0.1, 10))
            new_type = (types[solicitor] + 1) % 3  # different type

            def payment_with_parent(parent):
                variant = tree.copy()
                variant.attach(newcomer, parent)
                p = dict(pays)
                p[newcomer] = new_pay
                t = dict(types)
                t[newcomer] = new_type
                return tree_payments(variant, p, t)

            as_child = payment_with_parent(solicitor)
            # (a) monotonicity for everyone.
            for node in before:
                assert as_child[node] >= before[node] - 1e-9
            # (b) child placement dominates any deeper-in-subtree or
            # outside placement for the solicitor.
            candidates = [ROOT] + [x for x in range(n) if x != solicitor]
            for parent in candidates:
                other = payment_with_parent(parent)
                assert as_child[solicitor] >= other[solicitor] - 1e-9

    def test_sibling_split_is_neutral(self):
        """Lemma 6.4's second shape: sibling identities leave the utility
        unchanged (depths of all other nodes are untouched)."""
        tree = make_tree([(ROOT, 1), (1, 2), (2, 3)])
        pays = {1: 0.0, 2: 6.0, 3: 4.0}
        types = {1: 0, 2: 1, 3: 2}
        honest = tree_payments(tree, pays, types)[2]

        # Split node 2 into siblings 10 and 11 under node 1; child 3 goes
        # under 10; auction payment preserved on identity 10.
        attacked = make_tree([(ROOT, 1), (1, 10), (1, 11), (10, 3)])
        pays2 = {1: 0.0, 10: 6.0, 11: 0.0, 3: 4.0}
        types2 = {1: 0, 10: 1, 11: 1, 3: 2}
        p = tree_payments(attacked, pays2, types2)
        assert p[10] + p[11] == pytest.approx(honest)
