"""Unit tests for the columnar struct-of-arrays store and its kernels.

The differential guarantees (columnar == sorted, seed by seed) live in
``test_rit_engines.py`` and ``test_columnar_differential.py``; this file
pins the store's construction contract — array layout, validation
messages, frozen ownership, kernel-by-kernel equivalence to the object
path.
"""

import numpy as np
import pytest

from repro.core.columnar import ColumnarStore, tree_payments_columnar
from repro.core.exceptions import (
    ConfigurationError,
    ModelError,
    TreeError,
)
from repro.core.extract import extract
from repro.core.numeric import is_zero
from repro.core.payments import tree_payments
from repro.core.rit import RIT, profile_arrays, pools_from_arrays
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import IncentiveTree
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def small_scenario(users=60, types=3, tasks_per_type=8, seed=5):
    job = Job.uniform(types, tasks_per_type)
    scenario = paper_scenario(
        users, job, rng=seed, distribution=UserDistribution(num_types=types)
    )
    return job, scenario


@pytest.fixture()
def store_setup():
    job, scenario = small_scenario()
    asks = scenario.truthful_asks()
    return job, scenario, asks, ColumnarStore.build(job, asks, scenario.tree)


class TestStoreConstruction:
    def test_profile_arrays_match_the_object_path(self, store_setup):
        job, scenario, asks, store = store_setup
        uid_arr, type_arr, val_arr, cap_arr = profile_arrays(asks)
        np.testing.assert_array_equal(store.uids, uid_arr)
        np.testing.assert_array_equal(store.types, type_arr)
        np.testing.assert_array_equal(store.values, val_arr)
        np.testing.assert_array_equal(store.caps, cap_arr)
        assert store.num_users == len(asks)
        assert store.k_max == int(cap_arr.max())

    def test_type_supply_sums_capacities(self, store_setup):
        job, scenario, asks, store = store_setup
        for tau in job.types():
            expected = sum(
                a.capacity for a in asks.values() if a.task_type == tau
            )
            assert store.type_supply[tau] == expected

    def test_arrays_are_frozen(self, store_setup):
        _, _, _, store = store_setup
        for arr in (
            store.uids,
            store.values,
            store.caps,
            store.bfs_parent,
            store.subtree_sizes,
            store.child_index,
        ):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_nbytes_counts_profile_tree_and_blocks(self, store_setup):
        _, _, _, store = store_setup
        floor = (
            store.uids.nbytes
            + store.bfs_uids.nbytes
            + store.child_index.nbytes
        )
        assert store.nbytes > floor
        assert isinstance(store.nbytes, int)

    def test_empty_profile_builds_an_empty_store(self):
        job = Job.uniform(2, 3)
        store = ColumnarStore.build(job, {}, IncentiveTree())
        assert store.num_users == 0
        assert store.k_max == 0
        assert store.pool(0) is None
        assert store.extract_units(1).values.size == 0
        assert store.nbytes >= 0


class TestValidation:
    def test_error_messages_match_the_object_path(self):
        job, scenario = small_scenario(users=20)
        asks = scenario.truthful_asks()
        mech = RIT(engine="sorted")

        def messages(bad_asks, bad_tree):
            errors = []
            for build in (
                lambda: ColumnarStore.build(job, bad_asks, bad_tree),
                lambda: mech.run(
                    job, bad_asks, bad_tree, np.random.default_rng(0)
                ),
            ):
                with pytest.raises(ModelError) as excinfo:
                    build()
                errors.append(str(excinfo.value))
            return errors

        # An ask from a user the tree never admitted.
        extra = dict(asks)
        extra[999] = Ask(task_type=0, capacity=1, value=1.0)
        columnar_msg, object_msg = messages(extra, scenario.tree)
        assert columnar_msg == object_msg

        # A tree node that never submitted an ask.
        short = dict(asks)
        del short[next(iter(short))]
        columnar_msg, object_msg = messages(short, scenario.tree)
        assert columnar_msg == object_msg

    def test_out_of_range_type_names_the_first_offender(self):
        job = Job.uniform(2, 3)
        tree = IncentiveTree()
        tree.attach(0)
        asks = {0: Ask(task_type=7, capacity=1, value=1.0)}
        with pytest.raises(ModelError) as excinfo:
            ColumnarStore.build(job, asks, tree)
        assert "user 0 bids for type 7" in str(excinfo.value)


class TestExtractKernel:
    def test_unit_asks_equal_algorithm_2(self, store_setup):
        job, scenario, asks, store = store_setup
        for tau in job.types():
            kernel = store.extract_units(tau)
            reference = extract(tau, asks)
            assert kernel.task_type == reference.task_type
            np.testing.assert_array_equal(kernel.values, reference.values)
            np.testing.assert_array_equal(kernel.owners, reference.owners)


class TestPoolKernel:
    def test_pools_equal_per_run_construction(self, store_setup):
        job, scenario, asks, store = store_setup
        uid_arr, type_arr, val_arr, cap_arr = profile_arrays(asks)
        by_type = pools_from_arrays(uid_arr, type_arr, val_arr, cap_arr)
        for tau in job.types():
            fresh = by_type.get(tau)
            pool = store.pool(tau)
            if fresh is None:
                assert pool is None
                continue
            np.testing.assert_array_equal(pool.uids, fresh.uids)
            np.testing.assert_array_equal(pool.values, fresh.values)
            np.testing.assert_array_equal(pool.remaining, fresh.remaining)
            np.testing.assert_array_equal(
                pool._sorted_users, fresh._sorted_users
            )
            np.testing.assert_array_equal(
                pool._sorted_values, fresh._sorted_values
            )
            np.testing.assert_array_equal(pool._rank, fresh._rank)

    def test_pool_capacity_state_is_private_per_pool(self, store_setup):
        _, _, _, store = store_setup
        tau = 0
        first = store.pool(tau)
        before = first.remaining.copy()
        first.remaining[:] = 0
        second = store.pool(tau)
        np.testing.assert_array_equal(second.remaining, before)


class TestTreeArrays:
    def test_bfs_layout_matches_the_tree(self, store_setup):
        _, scenario, _, store = store_setup
        tree = scenario.tree
        order = tree.bfs_order()
        np.testing.assert_array_equal(
            store.bfs_uids, np.asarray(order, dtype=np.int64)
        )
        depths = tree.depths()
        for pos, uid in enumerate(order):
            assert store.bfs_depth[pos] == depths[uid]
            assert store.subtree_sizes[pos] == tree.subtree_size(uid)
            lo, hi = store.child_start[pos], store.child_start[pos + 1]
            children = {
                order[i] for i in store.child_index[lo:hi].tolist()
            }
            assert children == set(tree.children(uid))

    def test_grafted_tree_is_reflected_by_a_fresh_store(self):
        job, scenario = small_scenario(users=40, seed=9)
        asks = scenario.truthful_asks()
        tree = scenario.tree
        # Withdraw the first internal node the way the service does:
        # graft its children onto the grandparent, drop the leaf + ask.
        victim = next(u for u in tree.bfs_order() if tree.children(u))
        tree.reattach_children(victim, tree.parent(victim))
        tree.remove_leaf(victim)
        del asks[victim]
        store = ColumnarStore.build(job, asks, tree)
        assert victim not in store.bfs_uids.tolist()
        np.testing.assert_array_equal(
            store.bfs_uids, np.asarray(tree.bfs_order(), dtype=np.int64)
        )
        for pos, uid in enumerate(tree.bfs_order()):
            assert store.subtree_sizes[pos] == tree.subtree_size(uid)


class TestPaymentsKernel:
    def test_bitwise_equal_to_tree_payments_plus_prune(self, store_setup):
        job, scenario, asks, store = store_setup
        gen = np.random.default_rng(3)
        uids = list(asks)
        winners = gen.choice(
            uids, size=max(1, len(uids) // 3), replace=False
        )
        auction = {
            int(uid): float(gen.uniform(0.5, 4.0)) for uid in winners
        }
        for decay in (0.3, 0.5):
            kept, num_nodes = tree_payments_columnar(
                store, auction, decay
            )
            task_types = {
                uid: ask.task_type for uid, ask in asks.items()
            }
            reference = tree_payments(
                scenario.tree, auction, task_types, decay=decay
            )
            pruned = {
                uid: pay
                for uid, pay in reference.items()
                if not is_zero(pay)
            }
            assert kept == pruned, f"decay {decay}"
            assert num_nodes == len(scenario.tree)
            # Bitwise, not approximately: the kernel replicates the
            # float operation sequence of the object path.
            for uid, pay in kept.items():
                assert pay == pruned[uid]

    def test_decay_validation_matches_tree_payments(self, store_setup):
        _, _, _, store = store_setup
        with pytest.raises(TreeError) as excinfo:
            tree_payments_columnar(store, {}, 1.5)
        assert "decay must be in (0, 1)" in str(excinfo.value)

    def test_empty_store_pays_nobody(self):
        job = Job.uniform(2, 3)
        store = ColumnarStore.build(job, {}, IncentiveTree())
        assert tree_payments_columnar(store, {}, 0.5) == ({}, 0)


class TestFromPopulation:
    def test_equals_build_from_truthful_asks(self):
        job, scenario = small_scenario(users=80, seed=11)
        via_asks = ColumnarStore.build(
            job, scenario.truthful_asks(), scenario.tree
        )
        via_population = ColumnarStore.from_population(
            job, scenario.population, scenario.tree
        )
        np.testing.assert_array_equal(via_population.uids, via_asks.uids)
        np.testing.assert_array_equal(via_population.types, via_asks.types)
        np.testing.assert_array_equal(
            via_population.values, via_asks.values
        )
        np.testing.assert_array_equal(via_population.caps, via_asks.caps)
        np.testing.assert_array_equal(
            via_population.bfs_uids, via_asks.bfs_uids
        )
        assert via_population.nbytes == via_asks.nbytes

    def test_tree_node_off_population_rejected(self):
        job, scenario = small_scenario(users=10)
        tree = scenario.tree.copy()
        tree.attach(10_000, next(iter(tree.nodes())))
        with pytest.raises(ModelError) as excinfo:
            ColumnarStore.from_population(job, scenario.population, tree)
        assert "tree nodes without asks" in str(excinfo.value)


class TestRunWiring:
    def test_store_only_meaningful_for_columnar_engine(self):
        job, scenario = small_scenario(users=20)
        asks = scenario.truthful_asks()
        store = ColumnarStore.build(job, asks, scenario.tree)
        with pytest.raises(ConfigurationError):
            RIT(engine="sorted").run(
                job,
                asks,
                scenario.tree,
                np.random.default_rng(0),
                columnar_store=store,
            )

    def test_stale_store_rejected(self):
        job, scenario = small_scenario(users=20)
        asks = scenario.truthful_asks()
        store = ColumnarStore.build(job, asks, scenario.tree)
        shrunk = dict(asks)
        victim = next(u for u in asks if not scenario.tree.children(u))
        tree = scenario.tree.copy()
        tree.remove_leaf(victim)
        del shrunk[victim]
        with pytest.raises(ConfigurationError) as excinfo:
            RIT(engine="columnar").run(
                job, shrunk, tree, np.random.default_rng(0),
                columnar_store=store,
            )
        assert "rebuild the store per epoch" in str(excinfo.value)

    def test_prebuilt_store_changes_nothing(self):
        job, scenario = small_scenario(users=70, seed=4)
        asks = scenario.truthful_asks()
        store = ColumnarStore.build(job, asks, scenario.tree)
        mech = RIT(engine="columnar")
        with_store = mech.run(
            job,
            asks,
            scenario.tree,
            np.random.default_rng(7),
            columnar_store=store,
        )
        without_store = mech.run(
            job, asks, scenario.tree, np.random.default_rng(7)
        )
        assert with_store.allocation == without_store.allocation
        assert with_store.payments == without_store.payments
        assert (
            with_store.auction_payments == without_store.auction_payments
        )
