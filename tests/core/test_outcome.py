"""Tests for mechanism outcome containers and utility accounting."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.outcome import MechanismOutcome, RoundRecord
from repro.core.types import Job


def sample_outcome():
    return MechanismOutcome(
        allocation={1: 2, 2: 1},
        auction_payments={1: 6.0, 2: 3.0},
        payments={1: 7.0, 2: 3.0, 3: 0.5},
        completed=True,
        rounds=[RoundRecord(0, 0, 3, 3, 2.0, 4, False)],
        elapsed_auction=0.01,
        elapsed_total=0.02,
    )


class TestAccessors:
    def test_tasks_of(self):
        out = sample_outcome()
        assert out.tasks_of(1) == 2
        assert out.tasks_of(99) == 0

    def test_payment_of(self):
        out = sample_outcome()
        assert out.payment_of(3) == 0.5
        assert out.payment_of(99) == 0.0

    def test_auction_payment_of(self):
        out = sample_outcome()
        assert out.auction_payment_of(2) == 3.0
        assert out.auction_payment_of(3) == 0.0

    def test_utility_of(self):
        out = sample_outcome()
        assert out.utility_of(1, cost=2.0) == pytest.approx(7.0 - 4.0)
        assert out.utility_of(3, cost=5.0) == pytest.approx(0.5)
        assert out.utility_of(42, cost=5.0) == 0.0

    def test_group_utility(self):
        out = sample_outcome()
        assert out.group_utility([1, 2], cost=1.0) == pytest.approx(
            (7.0 - 2.0) + (3.0 - 1.0)
        )


class TestAggregates:
    def test_totals(self):
        out = sample_outcome()
        assert out.total_payment == pytest.approx(10.5)
        assert out.total_auction_payment == pytest.approx(9.0)
        assert out.total_allocated == 3

    def test_average_utility(self):
        out = sample_outcome()
        costs = {1: 2.0, 2: 1.0, 3: 9.0}
        expected = (10.5 - (2 * 2.0 + 1 * 1.0)) / 10
        assert out.average_utility(costs, 10) == pytest.approx(expected)

    def test_average_utility_missing_cost_raises(self):
        out = sample_outcome()
        with pytest.raises(ModelError):
            out.average_utility({1: 2.0}, 10)

    def test_average_utility_bad_n_raises(self):
        with pytest.raises(ModelError):
            sample_outcome().average_utility({}, 0)

    def test_solicitation_rewards(self):
        rewards = sample_outcome().solicitation_rewards()
        assert rewards == {1: pytest.approx(1.0), 3: pytest.approx(0.5)}

    def test_check_covers(self):
        out = sample_outcome()
        assert out.check_covers(Job([3]))
        assert not out.check_covers(Job([4]))


class TestVoid:
    def test_void_zeroes_everything_but_keeps_diagnostics(self):
        out = sample_outcome()
        voided = out.void()
        assert voided.allocation == {}
        assert voided.payments == {}
        assert voided.auction_payments == {}
        assert not voided.completed
        assert len(voided.rounds) == 1
        assert voided.elapsed_auction == out.elapsed_auction

    def test_void_does_not_mutate_original(self):
        out = sample_outcome()
        out.void()
        assert out.completed
        assert out.total_payment == pytest.approx(10.5)
