"""Tests for the Lemma 6.2/6.3 bounds and round budgets."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds
from repro.core.exceptions import ConfigurationError


class TestCRATruthfulProbability:
    def test_remark_61_first_anchor(self):
        """Paper: K_max=10, m_i=1000, q=0 gives ≈ 0.98 (base-10 log)."""
        value = bounds.cra_truthful_probability(10, 0, 1000)
        assert value == pytest.approx(0.98, abs=0.005)

    def test_remark_61_second_anchor(self):
        """Paper: k=10, q+m_i=50 gives ≈ 0.59."""
        value = bounds.cra_truthful_probability(10, 0, 50)
        assert value == pytest.approx(0.59, abs=0.005)

    def test_decreases_as_q_shrinks(self):
        """Remark 6.1: the bound decreases with the decrement of q."""
        values = [bounds.cra_truthful_probability(10, q, 1000) for q in (1000, 500, 100, 0)]
        assert values == sorted(values, reverse=True)

    def test_increases_with_m_i(self):
        values = [bounds.cra_truthful_probability(10, 0, m) for m in (100, 500, 1000, 5000)]
        assert values == sorted(values)

    def test_decreases_with_coalition_size(self):
        values = [bounds.cra_truthful_probability(k, 0, 1000) for k in (1, 5, 10, 50)]
        assert values == sorted(values, reverse=True)

    def test_vacuous_when_coalition_dominates(self):
        assert bounds.cra_truthful_probability(30, 0, 50) == -math.inf

    def test_k_zero_is_essentially_one(self):
        value = bounds.cra_truthful_probability(0, 0, 1000)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_log_base_changes_value(self):
        b10 = bounds.cra_truthful_probability(10, 0, 1000, log_base=10)
        b2 = bounds.cra_truthful_probability(10, 0, 1000, log_base=2)
        assert b2 < b10  # log2 penalty is larger

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            bounds.cra_truthful_probability(-1, 0, 10)
        with pytest.raises(ConfigurationError):
            bounds.cra_truthful_probability(1, -1, 10)
        with pytest.raises(ConfigurationError):
            bounds.cra_truthful_probability(1, 0, 0)
        with pytest.raises(ConfigurationError):
            bounds.cra_truthful_probability(1, 0, 10, log_base=1.0)

    @given(
        k=st.integers(min_value=0, max_value=50),
        q=st.integers(min_value=0, max_value=2000),
        m_i=st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=150)
    def test_bound_is_at_most_one(self, k, q, m_i):
        assert bounds.cra_truthful_probability(k, q, m_i) <= 1.0 + 1e-12


class TestPerTypeTarget:
    def test_single_type_is_h(self):
        assert bounds.per_type_target(0.8, 1) == pytest.approx(0.8)

    def test_product_over_types_recovers_h(self):
        eta = bounds.per_type_target(0.8, 10)
        assert eta ** 10 == pytest.approx(0.8)

    def test_eta_exceeds_h_for_multiple_types(self):
        assert bounds.per_type_target(0.8, 10) > 0.8

    def test_validation(self):
        for h in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                bounds.per_type_target(h, 10)
        with pytest.raises(ConfigurationError):
            bounds.per_type_target(0.8, 0)


class TestMaxRounds:
    def test_paper_fig6a_parameters(self):
        """H=0.8, m=10, K_max=20, m_i=5000 allows a couple of rounds."""
        assert bounds.max_rounds(0.8, 10, 20, 5000) == 2

    def test_fig9_parameters_give_zero(self):
        """The printed formula supports zero rounds at the Fig. 9 scale —
        the documented motivation for the 'until-complete' policy."""
        assert bounds.max_rounds(0.8, 10, 20, 300) == 0

    def test_budget_satisfies_target(self):
        h, m, k_max, m_i = 0.8, 10, 20, 5000
        budget = bounds.max_rounds(h, m, k_max, m_i)
        p = bounds.cra_truthful_probability(k_max, 0, m_i)
        eta = bounds.per_type_target(h, m)
        assert p ** budget >= eta
        assert p ** (budget + 1) < eta  # maximality

    def test_monotone_in_m_i(self):
        budgets = [bounds.max_rounds(0.8, 10, 20, m) for m in (500, 1000, 5000, 20000)]
        assert budgets == sorted(budgets)

    def test_zero_when_bound_nonpositive(self):
        assert bounds.max_rounds(0.8, 10, 30, 50) == 0

    def test_k_zero_degenerate_case(self):
        # Bound is (essentially) 1: budget should allow finishing.
        assert bounds.max_rounds(0.8, 10, 0, 100) >= 100


class TestMinUnitAsks:
    def test_remark_61_rule(self):
        assert bounds.min_unit_asks(5000) == 10000

    def test_zero(self):
        assert bounds.min_unit_asks(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bounds.min_unit_asks(-1)


class TestRITTruthfulProbability:
    def test_at_least_h_when_budgets_positive(self):
        p = bounds.rit_truthful_probability(0.8, 10, 20, [5000] * 10)
        assert p >= 0.8 - 1e-9

    def test_zero_when_any_type_unsupported(self):
        p = bounds.rit_truthful_probability(0.8, 10, 20, [5000] * 9 + [100])
        assert p == 0.0

    def test_skips_empty_types(self):
        p = bounds.rit_truthful_probability(0.8, 2, 20, [5000, 0])
        assert p > 0.8
