"""RIT-level engine equivalence and the pre-engine golden freeze.

``tests/goldens/rit_engine/pre_pr_outcomes.json`` was captured by running
the mechanism *before* the sorted engine existed (commit ``1f8922f``),
over five seeded scenarios.  Both engines must keep reproducing those
outcomes byte for byte — allocations, prices, payments and per-round logs
— which is the acceptance criterion that the fast path changed nothing
observable.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import ENGINES, RIT
from repro.core.types import Job
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "goldens"
    / "rit_engine"
    / "pre_pr_outcomes.json"
)


def load_goldens():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def build_scenario(config):
    job = Job.uniform(config["types"], config["tasks_per_type"])
    scenario = paper_scenario(
        config["users"],
        job,
        rng=config["scenario_seed"],
        distribution=UserDistribution(num_types=config["types"]),
    )
    return job, scenario


def outcome_rounds(outcome):
    return [
        [
            r.task_type,
            r.round_index,
            r.q_before,
            r.num_winners,
            None if math.isnan(r.price) else r.price,
            r.n_s,
            r.overflow_trimmed,
        ]
        for r in outcome.rounds
    ]


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            RIT(engine="bogus")

    def test_default_engine_is_sorted(self):
        assert RIT().engine == "sorted"
        assert "sorted" in ENGINES and "reference" in ENGINES


class TestPrePRGoldens:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("key", sorted(load_goldens()))
    def test_outcome_identical_to_pre_engine_run(self, key, engine):
        golden = load_goldens()[key]
        config = golden["config"]
        job, scenario = build_scenario(config)
        mech = RIT(round_budget=config["policy"], engine=engine)
        outcome = mech.run(
            job,
            scenario.truthful_asks(),
            scenario.tree,
            np.random.default_rng(config["run_seed"]),
        )
        assert outcome.completed == golden["completed"]
        assert {
            str(uid): count for uid, count in sorted(outcome.allocation.items())
        } == golden["allocation"]
        assert {
            str(uid): pay
            for uid, pay in sorted(outcome.auction_payments.items())
        } == golden["auction_payments"]
        assert {
            str(uid): pay for uid, pay in sorted(outcome.payments.items())
        } == golden["payments"]
        assert len(outcome.rounds) == golden["num_rounds"]
        assert outcome_rounds(outcome) == golden["rounds"]


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", ["paper", "until-complete"])
    def test_engines_agree_on_random_instances(self, policy):
        gen = np.random.default_rng(0 if policy == "paper" else 1)
        for trial in range(4):
            users = int(gen.integers(40, 200))
            types = int(gen.integers(1, 5))
            job = Job.uniform(types, int(gen.integers(2, 15)))
            scenario = paper_scenario(
                users,
                job,
                rng=int(gen.integers(0, 1000)),
                distribution=UserDistribution(num_types=types),
            )
            asks = scenario.truthful_asks()
            run_seed = int(gen.integers(0, 2**31))
            outcomes = {}
            for engine in ENGINES:
                mech = RIT(round_budget=policy, engine=engine)
                outcomes[engine] = mech.run(
                    job, asks, scenario.tree, np.random.default_rng(run_seed)
                )
            fast = outcomes["sorted"]
            for other_name in ("reference", "columnar"):
                other = outcomes[other_name]
                context = f"policy {policy} trial {trial} vs {other_name}"
                assert fast.completed == other.completed, context
                assert fast.allocation == other.allocation, context
                assert (
                    fast.auction_payments == other.auction_payments
                ), context
                assert fast.payments == other.payments, context
                assert outcome_rounds(fast) == outcome_rounds(other), context

    def test_stage_timings_populated_by_presorted_engines_only(self):
        job = Job.uniform(2, 5)
        scenario = paper_scenario(
            60, job, rng=0, distribution=UserDistribution(num_types=2)
        )
        asks = scenario.truthful_asks()
        for engine in ("sorted", "columnar"):
            outcome = RIT(engine=engine).run(
                job, asks, scenario.tree, np.random.default_rng(0)
            )
            assert set(outcome.stage_timings) == {
                "sample",
                "consensus",
                "select",
                "consume",
            }, engine
            assert all(v >= 0.0 for v in outcome.stage_timings.values())
            assert sum(outcome.stage_timings.values()) > 0.0
        reference_outcome = RIT(engine="reference").run(
            job, asks, scenario.tree, np.random.default_rng(0)
        )
        assert reference_outcome.stage_timings == {}
