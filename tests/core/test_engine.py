"""Differential tests: sorted auction engine vs the reference CRA.

The engine's contract (see :mod:`repro.core.engine`) is *bit-identical*
equivalence with :func:`repro.core.cra.cra` run over the materialized unit
pool — identical RNG stream, identical :class:`CRAResult` on every field.
These tests drive both paths with the same seeds across tie-heavy values,
sample-rate scales, overflow and empty-sample regimes, single- and
multi-round, and check the pool's capacity bookkeeping down to exhaustion.
"""

import math

import numpy as np
import pytest

from repro.core.cra import cra
from repro.core.engine import SortedTypePool, StageTimers, cra_presorted
from repro.core.exceptions import ConfigurationError, ModelError


def make_pool(values, capacities, uids=None):
    values = np.asarray(values, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.int64)
    if uids is None:
        uids = 100 + np.arange(values.size)
    return SortedTypePool(np.asarray(uids, dtype=np.int64), values, capacities)


def reference_pool(pool):
    """The unit-ask vector the reference CRA would see this round."""
    return np.repeat(pool.values, pool.remaining)


def assert_results_equal(fast, ref, context=""):
    assert np.array_equal(fast.winners, ref.winners), context
    assert np.array_equal(fast.sample_indices, ref.sample_indices), context
    if math.isnan(ref.price):
        assert math.isnan(fast.price), context
    else:
        assert fast.price == ref.price, context
    assert fast.n_s == ref.n_s, context
    assert fast.offset == ref.offset, context
    assert fast.overflow_trimmed == ref.overflow_trimmed, context


def random_instance(gen, *, tie_heavy):
    n = int(gen.integers(1, 15))
    if tie_heavy:
        values = gen.choice([0.5, 1.0, 2.0], size=n)
    else:
        values = gen.uniform(0.05, 10.0, size=n)
    capacities = gen.integers(0, 6, size=n)
    q = int(gen.integers(1, 12))
    m_i = int(gen.integers(1, 12))
    return values, capacities, q, m_i


class TestPoolValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            SortedTypePool(
                np.arange(3), np.zeros(3), np.ones(2, dtype=np.int64)
            )

    def test_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            make_pool([1.0, 2.0], [1, -1])


class TestPoolViews:
    def test_unit_asks_matches_repeat(self):
        pool = make_pool([3.0, 1.0, 2.0], [2, 0, 3])
        values, owners = pool.unit_asks()
        assert np.array_equal(values, [3.0, 3.0, 2.0, 2.0, 2.0])
        assert np.array_equal(owners, [100, 100, 102, 102, 102])

    def test_unit_owners_maps_round_indices(self):
        pool = make_pool([3.0, 1.0, 2.0], [2, 1, 3])
        # Unit pool: [3, 3, 1, 2, 2, 2] owned by uids 100,100,101,102x3.
        owners = pool.unit_owners(np.array([0, 2, 5]))
        assert np.array_equal(owners, [100, 101, 102])

    def test_alive_at_most_matches_linear_count(self):
        gen = np.random.default_rng(3)
        pool = make_pool(
            gen.choice([0.5, 1.0, 2.0], size=12), gen.integers(0, 4, size=12)
        )
        units = reference_pool(pool)
        for threshold in (0.25, 0.5, 1.0, 1.5, 2.0, 9.0):
            assert pool.alive_at_most(threshold) == int(
                np.count_nonzero(units <= threshold)
            )

    def test_smallest_units_matches_stable_argsort(self):
        gen = np.random.default_rng(4)
        for trial in range(30):
            values = gen.choice([0.5, 1.0, 1.0, 2.0], size=8)
            caps = gen.integers(0, 4, size=8)
            pool = make_pool(values, caps)
            units = reference_pool(pool)
            if units.size == 0:
                continue
            bounds = pool.round_bounds()
            count = int(gen.integers(1, units.size + 1))
            expected = np.argsort(units, kind="stable")[:count]
            got, got_values = pool.smallest_units(count, bounds)
            assert np.array_equal(got, expected), trial
            assert np.array_equal(got_values, units[expected]), trial

    def test_smallest_units_zero_count(self):
        pool = make_pool([1.0], [2])
        indices, values = pool.smallest_units(0, pool.round_bounds())
        assert indices.size == 0 and values.size == 0


class TestConsume:
    def test_consume_decrements_and_tracks(self):
        pool = make_pool([2.0, 1.0], [2, 1])
        assert pool.total_remaining() == 3
        pool.consume(100)
        pool.consume(101)
        assert pool.total_remaining() == 1
        assert np.array_equal(pool.remaining, [1, 0])
        assert pool.alive_at_most(2.0) == 1

    def test_consume_many_with_repeats(self):
        pool = make_pool([2.0, 1.0, 3.0], [3, 1, 2])
        pool.consume_many(np.array([100, 100, 102]))
        assert np.array_equal(pool.remaining, [1, 1, 1])
        assert pool.total_remaining() == 3

    def test_consume_unknown_uid(self):
        pool = make_pool([1.0], [1])
        with pytest.raises(KeyError):
            pool.consume(999)

    def test_consume_positions_overdraw_restores_state(self):
        pool = make_pool([2.0, 1.0], [2, 1])
        with pytest.raises(ModelError):
            pool.consume_positions(np.array([1, 1]))
        # The failed batch must leave capacities untouched.
        assert np.array_equal(pool.remaining, [2, 1])
        assert pool.total_remaining() == 3

    def test_consume_to_exhaustion_invariants(self):
        gen = np.random.default_rng(11)
        caps = gen.integers(0, 5, size=9)
        pool = make_pool(gen.uniform(0.1, 5.0, size=9), caps)
        shadow = caps.copy()
        while pool.total_remaining() > 0:
            alive = np.flatnonzero(shadow > 0)
            batch = gen.choice(alive, size=min(3, alive.size), replace=False)
            pool.consume_positions(batch)
            shadow[batch] -= 1
            assert np.array_equal(pool.remaining, shadow)
            assert pool.total_remaining() == int(shadow.sum())
            units = reference_pool(pool)
            assert pool.alive_at_most(np.inf) == units.size
            if units.size:
                got, _ = pool.smallest_units(units.size, pool.round_bounds())
                assert np.array_equal(
                    got, np.argsort(units, kind="stable")
                )
        assert np.array_equal(pool.remaining, np.zeros_like(caps))


class TestCRAPresortedValidation:
    def test_rejects_bad_arguments(self):
        pool = make_pool([1.0], [1])
        with pytest.raises(ConfigurationError):
            cra_presorted(pool, 0, 1)
        with pytest.raises(ConfigurationError):
            cra_presorted(pool, 1, 0)
        with pytest.raises(ConfigurationError):
            cra_presorted(pool, 1, 1, sample_rate_scale=0.0)


class TestDifferential:
    def test_empty_pool_matches_reference(self):
        pool = make_pool([1.0, 2.0], [0, 0])
        fast = cra_presorted(pool, 3, 3, np.random.default_rng(0))
        ref = cra(reference_pool(pool), 3, 3, np.random.default_rng(0))
        assert_results_equal(fast, ref)
        assert fast.num_winners == 0

    @pytest.mark.parametrize("tie_heavy", [False, True])
    @pytest.mark.parametrize("scale", [0.25, 1.0, 4.0])
    def test_single_round_equivalence(self, tie_heavy, scale):
        gen = np.random.default_rng(hash((tie_heavy, scale)) % 2**32)
        for trial in range(60):
            values, caps, q, m_i = random_instance(gen, tie_heavy=tie_heavy)
            pool = make_pool(values, caps)
            seed = int(gen.integers(0, 2**31))
            fast = cra_presorted(
                pool,
                q,
                m_i,
                np.random.default_rng(seed),
                sample_rate_scale=scale,
            )
            ref = cra(
                reference_pool(pool),
                q,
                m_i,
                np.random.default_rng(seed),
                sample_rate_scale=scale,
            )
            assert_results_equal(fast, ref, context=f"trial {trial}")

    def test_multi_round_with_consumption(self):
        gen = np.random.default_rng(17)
        for trial in range(25):
            values, caps, q, m_i = random_instance(gen, tie_heavy=True)
            pool = make_pool(values, caps)
            shadow = caps.astype(np.int64).copy()
            for round_index in range(12):
                if pool.total_remaining() == 0 or q == 0:
                    break
                seed = int(gen.integers(0, 2**31))
                fast = cra_presorted(pool, q, m_i, np.random.default_rng(seed))
                units = np.repeat(
                    np.asarray(values, dtype=np.float64), shadow
                )
                ref = cra(units, q, m_i, np.random.default_rng(seed))
                assert_results_equal(
                    fast, ref, context=f"trial {trial} round {round_index}"
                )
                owners = np.repeat(np.arange(shadow.size), shadow)
                positions = owners[ref.winners]
                pool.consume_positions(positions)
                np.subtract.at(shadow, positions, 1)
                assert np.array_equal(pool.remaining, shadow)
                q -= ref.num_winners

    def test_stage_timers_accumulate(self):
        timers = StageTimers()
        pool = make_pool(
            np.random.default_rng(0).uniform(0.1, 5.0, size=40),
            np.full(40, 2),
        )
        cra_presorted(pool, 10, 10, np.random.default_rng(1), timers=timers)
        totals = timers.as_dict()
        assert set(totals) == {"sample", "consensus", "select", "consume"}
        assert totals["sample"] > 0.0
        # consume is timed by the caller (RIT), not by cra_presorted.
        assert totals["consume"] == 0.0
