"""Tests for the auditing wrapper."""

import math

import pytest

from repro.core.audit import AuditedMechanism, audit_outcome
from repro.core.exceptions import MechanismError
from repro.core.mechanism import Mechanism
from repro.core.outcome import MechanismOutcome
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


def profile():
    tree = IncentiveTree()
    asks = {}
    for i, (tau, cap, val) in enumerate(
        [(0, 2, 1.0), (0, 2, 2.0), (1, 3, 1.5), (1, 2, 2.5)], start=0
    ):
        tree.attach(i, ROOT)
        asks[i] = Ask(tau, cap, val)
    return Job([2, 2]), asks, tree


def good_outcome():
    return MechanismOutcome(
        allocation={0: 2, 2: 2},
        auction_payments={0: 4.0, 2: 5.0},
        payments={0: 4.5, 2: 5.0},
        completed=True,
    )


class TestAuditOutcome:
    def test_valid_outcome_passes(self):
        job, asks, _ = profile()
        audit_outcome(good_outcome(), job, asks)

    def test_void_must_be_empty(self):
        job, asks, _ = profile()
        bad = MechanismOutcome(
            allocation={0: 1}, completed=False
        )
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_clean_void_passes(self):
        job, asks, _ = profile()
        audit_outcome(MechanismOutcome(completed=False), job, asks)

    def test_unknown_participant(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.allocation[99] = 1
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_capacity_violation(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.allocation[0] = 3  # claimed capacity 2
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_coverage_violation(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.allocation[0] = 1  # type 0 now under-covered
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_nonfinite_payment(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.payments[0] = math.inf
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_negative_payment(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.payments[0] = -1.0
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_final_below_auction(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.payments[0] = 3.0  # auction payment is 4.0
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_referral_bound_violation(self):
        job, asks, _ = profile()
        bad = good_outcome()
        bad.payments[0] = 100.0
        with pytest.raises(MechanismError):
            audit_outcome(bad, job, asks)

    def test_referral_bound_can_be_waived(self):
        job, asks, _ = profile()
        loose = good_outcome()
        loose.payments[0] = 100.0
        audit_outcome(loose, job, asks, check_referral_bound=False)


class TestAuditedMechanism:
    def test_wraps_rit_transparently(self):
        job, asks, tree = profile()
        mech = AuditedMechanism(RIT(round_budget="until-complete"))
        out = mech.run(job, asks, tree, rng=0)
        assert isinstance(out, MechanismOutcome)
        assert "RIT" in mech.name

    def test_detects_broken_mechanism(self):
        class Broken(Mechanism):
            name = "broken"

            def run(self, job, asks, tree, rng=None):
                return MechanismOutcome(
                    allocation={0: 99},
                    payments={0: 1.0},
                    auction_payments={0: 1.0},
                    completed=True,
                )

        job, asks, tree = profile()
        with pytest.raises(MechanismError):
            AuditedMechanism(Broken()).run(job, asks, tree)

    def test_naive_combo_needs_waiver(self):
        """The naive combo's tree rule pays less than contributions for
        large shares — it violates the referral bound by design, so the
        audit must run with the bound waived."""
        from repro.baselines.naive_combo import NaiveComboMechanism

        tree = IncentiveTree()
        tree.attach(1, ROOT)
        tree.attach(2, ROOT)
        tree.attach(3, ROOT)
        asks = {1: Ask(0, 2, 2.0), 2: Ask(0, 1, 3.0), 3: Ask(0, 1, 5.0)}
        job = Job([2])
        mech = AuditedMechanism(NaiveComboMechanism(), check_referral_bound=False)
        out = mech.run(job, asks, tree)
        assert out.completed
