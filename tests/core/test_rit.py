"""Tests for the full RIT mechanism (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.exceptions import AllocationError, ConfigurationError, ModelError
from repro.core.rit import BUDGET_POLICIES, RIT
from repro.core.types import Ask, Job, Population, User
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


class TestConfiguration:
    def test_h_domain(self):
        for h in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                RIT(h=h)

    def test_budget_policy_domain(self):
        with pytest.raises(ConfigurationError):
            RIT(round_budget="bogus")
        for policy in BUDGET_POLICIES:
            RIT(round_budget=policy)  # no raise

    def test_decay_domain(self):
        for decay in (0.0, 1.0, -1.0):
            with pytest.raises(ConfigurationError):
                RIT(decay=decay)

    def test_k_max_override_domain(self):
        with pytest.raises(ConfigurationError):
            RIT(k_max=0)

    def test_sample_rate_scale_domain(self):
        with pytest.raises(ConfigurationError):
            RIT(sample_rate_scale=0.0)
        with pytest.raises(ConfigurationError):
            RIT(sample_rate_scale=-1.0)


class TestBudgets:
    def test_lemma_policy_matches_bounds(self):
        from repro.core.bounds import max_rounds

        mech = RIT(h=0.8, round_budget="lemma")
        assert mech.budget_for(5000, 20, 10) == max_rounds(0.8, 10, 20, 5000)

    def test_paper_policy_is_at_least_one(self):
        mech = RIT(h=0.8, round_budget="paper")
        assert mech.budget_for(100, 20, 10) == 1  # lemma gives 0 here

    def test_until_complete_budget_is_generous(self):
        mech = RIT(round_budget="until-complete")
        assert mech.budget_for(100, 20, 10) >= 32

    def test_zero_tasks_zero_budget(self):
        assert RIT().budget_for(0, 20, 10) == 0


class TestValidation:
    def _tree(self, ids):
        tree = IncentiveTree()
        for i in ids:
            tree.attach(i, ROOT)
        return tree

    def test_ask_without_tree_node_rejected(self):
        mech = RIT()
        with pytest.raises(ModelError):
            mech.run(Job([1]), {0: Ask(0, 1, 1.0)}, self._tree([]))

    def test_tree_node_without_ask_rejected(self):
        mech = RIT()
        with pytest.raises(ModelError):
            mech.run(Job([1]), {}, self._tree([0]))

    def test_ask_for_unknown_type_rejected(self):
        mech = RIT()
        with pytest.raises(ModelError):
            mech.run(Job([1]), {0: Ask(5, 1, 1.0)}, self._tree([0]))


class TestEndToEnd:
    @pytest.fixture
    def scenario(self):
        job = Job.uniform(4, 20)
        return paper_scenario(
            300, job, rng=42, distribution=UserDistribution(num_types=4)
        )

    def test_until_complete_finishes(self, scenario):
        mech = RIT(round_budget="until-complete")
        out = mech.run(
            scenario.job, scenario.truthful_asks(), scenario.tree, rng=1
        )
        assert out.completed
        assert out.total_allocated == scenario.job.size

    def test_allocation_covers_each_type_exactly(self, scenario):
        mech = RIT(round_budget="until-complete")
        asks = scenario.truthful_asks()
        out = mech.run(scenario.job, asks, scenario.tree, rng=2)
        per_type = {tau: 0 for tau in scenario.job.types()}
        for uid, x in out.allocation.items():
            per_type[asks[uid].task_type] += x
        for tau in scenario.job.types():
            assert per_type[tau] == scenario.job.tasks_of(tau)

    def test_no_user_exceeds_claimed_capacity(self, scenario):
        mech = RIT(round_budget="until-complete")
        asks = scenario.truthful_asks()
        out = mech.run(scenario.job, asks, scenario.tree, rng=3)
        for uid, x in out.allocation.items():
            assert x <= asks[uid].capacity

    def test_individual_rationality_under_truthful_asks(self, scenario):
        """Theorem 1: truthful utility is never negative."""
        mech = RIT(round_budget="until-complete")
        asks = scenario.truthful_asks()
        costs = scenario.costs()
        for seed in range(5):
            out = mech.run(scenario.job, asks, scenario.tree, rng=seed)
            for uid in set(out.payments) | set(out.allocation):
                assert out.utility_of(uid, costs[uid]) >= -1e-9

    def test_auction_payment_covers_cost_per_winner(self, scenario):
        """Lemma 6.1: p^A_j >= x_j * c_j under truthful asks."""
        mech = RIT(round_budget="until-complete")
        asks = scenario.truthful_asks()
        costs = scenario.costs()
        out = mech.run(scenario.job, asks, scenario.tree, rng=7)
        for uid, x in out.allocation.items():
            assert out.auction_payment_of(uid) >= x * costs[uid] - 1e-9

    def test_final_payment_at_least_auction_payment(self, scenario):
        mech = RIT(round_budget="until-complete")
        out = mech.run(scenario.job, scenario.truthful_asks(), scenario.tree, rng=4)
        for uid, pa in out.auction_payments.items():
            assert out.payment_of(uid) >= pa - 1e-9

    def test_referral_outlay_bounded(self, scenario):
        """§7-C: the platform pays at most 2x the auction total."""
        mech = RIT(round_budget="until-complete")
        out = mech.run(scenario.job, scenario.truthful_asks(), scenario.tree, rng=5)
        assert out.total_payment <= 2 * out.total_auction_payment + 1e-9

    def test_determinism_with_same_seed(self, scenario):
        mech = RIT(round_budget="until-complete")
        asks = scenario.truthful_asks()
        a = mech.run(scenario.job, asks, scenario.tree, rng=99)
        b = mech.run(scenario.job, asks, scenario.tree, rng=99)
        assert a.allocation == b.allocation
        assert a.payments == b.payments

    def test_round_records_are_coherent(self, scenario):
        mech = RIT(round_budget="until-complete")
        out = mech.run(scenario.job, scenario.truthful_asks(), scenario.tree, rng=6)
        assert sum(r.num_winners for r in out.rounds) == out.total_allocated
        for record in out.rounds:
            assert record.q_before >= record.num_winners
            assert record.task_type in list(scenario.job.types())


class TestVoiding:
    def _scenario(self, capacity_total, m_i):
        """Two users of type 0 with given joint capacity; job wants m_i."""
        tree = IncentiveTree()
        tree.attach(0, ROOT)
        tree.attach(1, 0)
        asks = {
            0: Ask(0, capacity_total // 2 or 1, 1.0),
            1: Ask(0, capacity_total - (capacity_total // 2 or 1), 2.0),
        }
        return Job([m_i]), asks, tree

    def test_insufficient_supply_voids(self):
        job, asks, tree = self._scenario(capacity_total=2, m_i=10)
        out = RIT(round_budget="until-complete").run(job, asks, tree, rng=0)
        assert not out.completed
        assert out.allocation == {}
        assert out.payments == {}
        assert out.auction_payments == {}

    def test_void_keeps_round_diagnostics(self):
        job, asks, tree = self._scenario(capacity_total=2, m_i=10)
        out = RIT(round_budget="until-complete").run(job, asks, tree, rng=0)
        assert isinstance(out.rounds, list)

    def test_raise_on_failure(self):
        job, asks, tree = self._scenario(capacity_total=2, m_i=10)
        mech = RIT(round_budget="until-complete", raise_on_failure=True)
        with pytest.raises(AllocationError):
            mech.run(job, asks, tree, rng=0)

    def test_lemma_policy_zero_budget_always_voids(self):
        """Fig. 9-scale parameters give a zero Lemma budget: strict mode
        must void deterministically."""
        job = Job.uniform(2, 50)
        tree = IncentiveTree()
        asks = {}
        gen = np.random.default_rng(0)
        for i in range(200):
            tree.attach(i, ROOT)
            asks[i] = Ask(int(gen.integers(0, 2)), 20, float(gen.uniform(0.1, 10)))
        out = RIT(h=0.8, round_budget="lemma").run(job, asks, tree, rng=1)
        assert not out.completed
        assert out.payments == {}

    def test_empty_ask_profile_with_nonempty_job_voids(self):
        out = RIT().run(Job([3]), {}, IncentiveTree(), rng=0)
        assert not out.completed


class TestTruthfulProbabilityBound:
    def test_reports_at_least_h_for_large_jobs(self):
        mech = RIT(h=0.8, round_budget="lemma")
        assert mech.truthful_probability_bound(Job.uniform(10, 5000), 20) >= 0.8

    def test_until_complete_guarantee_is_negligible_at_small_scale(self):
        """The generous policy buys completion at the cost of the formal
        guarantee: the product bound collapses at Fig. 9-like scales."""
        mech = RIT(h=0.8, round_budget="until-complete")
        assert mech.truthful_probability_bound(Job.uniform(10, 100), 20) < 0.01

    def test_reports_zero_when_per_round_bound_vacuous(self):
        mech = RIT(h=0.8, round_budget="until-complete")
        # 2*K_max >= m_i makes the Lemma 6.2 bound non-positive.
        assert mech.truthful_probability_bound(Job.uniform(10, 30), 20) == 0.0
