"""RNG policies and the shard/join decomposition of ``RIT.run``.

The sharded service path (``run_type_shard`` per type + ``join_shards``)
must be an exact refactoring of the monolithic ``run`` under
``rng_policy="per-type"`` — same winners, payments, and round records.
The default ``"stream"`` policy keeps the historical single-generator
draw order (pinned separately by the golden tests).
"""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rit import (
    RIT,
    RNG_POLICIES,
    pools_from_arrays,
    profile_arrays,
)
from repro.core.rng import as_generator, spawn_seeds
from repro.service.ledger import canonical_outcome
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution
from repro.core.types import Job


def scenario_inputs(seed=3, users=90, types=3, tasks_per_type=5):
    job = Job.uniform(types, tasks_per_type)
    scenario = paper_scenario(
        users, job, seed, distribution=UserDistribution(num_types=types)
    )
    return job, scenario.truthful_asks(), scenario.tree


class TestRngPolicy:
    def test_registry(self):
        assert RNG_POLICIES == ("stream", "per-type")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RIT(rng_policy="bogus")

    def test_policies_are_self_deterministic(self):
        job, asks, tree = scenario_inputs()
        for policy in RNG_POLICIES:
            mech = RIT(rng_policy=policy, round_budget="until-complete")
            first = mech.run(job, asks, tree, 11)
            second = mech.run(job, asks, tree, 11)
            assert canonical_outcome(first) == canonical_outcome(second)

    def test_engines_agree_under_per_type(self):
        job, asks, tree = scenario_inputs()
        outcomes = [
            RIT(
                engine=engine,
                rng_policy="per-type",
                round_budget="until-complete",
            ).run(job, asks, tree, 11)
            for engine in ("sorted", "reference")
        ]
        assert canonical_outcome(outcomes[0]) == canonical_outcome(outcomes[1])


class TestShardDecomposition:
    def test_manual_shard_merge_equals_run(self):
        job, asks, tree = scenario_inputs()
        seed = 11
        mech = RIT(rng_policy="per-type", round_budget="until-complete")
        whole = mech.run(job, asks, tree, seed)

        # Re-derive the per-type seeds exactly as run() does, then drive
        # the shard/join API by hand.
        gen = as_generator(seed)
        uid_arr, type_arr, val_arr, cap_arr = profile_arrays(asks)
        k_max = int(cap_arr.max())
        by_type = pools_from_arrays(uid_arr, type_arr, val_arr, cap_arr)
        type_seeds = spawn_seeds(gen, job.num_types)
        shards = [
            mech.run_type_shard(
                tau,
                job.tasks_of(tau),
                by_type.get(tau),
                k_max,
                job.num_types,
                as_generator(type_seeds[tau]),
            )
            for tau in job.types()
            if job.tasks_of(tau) > 0
        ]
        merged = mech.join_shards(job, asks, tree, shards)
        assert canonical_outcome(merged) == canonical_outcome(whole)

    def test_join_with_no_shards_voids_nonempty_job(self):
        job, asks, tree = scenario_inputs()
        mech = RIT(rng_policy="per-type")
        outcome = mech.join_shards(job, {}, tree, [])
        assert not outcome.completed
        assert outcome.payments == {}

    def test_shard_results_are_frozen(self):
        job, asks, tree = scenario_inputs(users=40)
        mech = RIT(rng_policy="per-type", round_budget="until-complete")
        gen = as_generator(1)
        uid_arr, type_arr, val_arr, cap_arr = profile_arrays(asks)
        by_type = pools_from_arrays(uid_arr, type_arr, val_arr, cap_arr)
        shard = mech.run_type_shard(
            0, job.tasks_of(0), by_type.get(0), int(cap_arr.max()),
            job.num_types, gen,
        )
        with pytest.raises(Exception):
            shard.covered = False
