"""Tests for randomness management."""

import itertools

import numpy as np
import pytest

from repro.core.rng import as_generator, spawn, spawn_seeds, spawn_stream


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.array_equal(a, b)


class TestSpawn:
    def test_count(self):
        assert len(spawn(1, 5)) == 5
        assert spawn(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_children_are_independent_and_deterministic(self):
        a1, a2 = spawn(99, 2)
        b1, b2 = spawn(99, 2)
        assert np.array_equal(a1.random(4), b1.random(4))
        assert np.array_equal(a2.random(4), b2.random(4))
        assert not np.array_equal(a1.random(4), a2.random(4))

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(5)
        first = spawn(gen, 1)[0].random(3)
        second = spawn(gen, 1)[0].random(3)
        assert not np.array_equal(first, second)

    def test_spawn_does_not_consume_parent_stream(self):
        gen_a = np.random.default_rng(5)
        gen_b = np.random.default_rng(5)
        spawn(gen_a, 3)
        assert np.array_equal(gen_a.random(4), gen_b.random(4))


class TestSpawnSeeds:
    def test_same_seed_sequence_replays_identically(self):
        """The common-random-numbers device: one seed sequence can feed
        two generators with identical streams."""
        (seq,) = spawn_seeds(42, 1)
        a = np.random.default_rng(seq).random(5)
        b = np.random.default_rng(seq).random(5)
        assert np.array_equal(a, b)

    def test_sequences_are_independent(self):
        s1, s2 = spawn_seeds(42, 2)
        a = np.random.default_rng(s1).random(5)
        b = np.random.default_rng(s2).random(5)
        assert not np.array_equal(a, b)

    def test_deterministic_across_calls(self):
        a = [np.random.default_rng(s).random(3).tolist() for s in spawn_seeds(7, 3)]
        b = [np.random.default_rng(s).random(3).tolist() for s in spawn_seeds(7, 3)]
        assert a == b

    def test_accepts_generator_and_seed_sequence(self):
        gen = np.random.default_rng(5)
        assert len(spawn_seeds(gen, 2)) == 2
        assert len(spawn_seeds(np.random.SeedSequence(5), 2)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestSpawnStream:
    def test_stream_is_deterministic(self):
        s1 = [g.random(2).tolist() for g in itertools.islice(spawn_stream(3), 4)]
        s2 = [g.random(2).tolist() for g in itertools.islice(spawn_stream(3), 4)]
        assert s1 == s2

    def test_stream_elements_differ(self):
        gens = list(itertools.islice(spawn_stream(3), 3))
        draws = [tuple(g.random(3)) for g in gens]
        assert len(set(draws)) == 3

    def test_stream_from_generator(self):
        gen = np.random.default_rng(11)
        gens = list(itertools.islice(spawn_stream(gen), 2))
        assert not np.array_equal(gens[0].random(3), gens[1].random(3))
