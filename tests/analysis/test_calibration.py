"""Tests for the dataset-substitution calibration metrics."""

import numpy as np
import pytest

from repro.analysis.calibration import (
    CalibrationReport,
    calibration_report,
    degree_gini,
    hill_tail_exponent,
)
from repro.core.exceptions import ConfigurationError
from repro.socialnet.generators import random_graph, twitter_like


class TestHillEstimator:
    def test_pareto_sample_recovers_exponent(self):
        """Hill on Pareto(α) data should estimate ≈ α."""
        gen = np.random.default_rng(0)
        alpha = 2.0
        samples = (gen.pareto(alpha, size=20000) + 1.0) * 5
        estimate = hill_tail_exponent(samples.astype(int), top_fraction=0.05)
        assert estimate == pytest.approx(alpha, rel=0.25)

    def test_thin_tail_gives_large_exponent(self):
        gen = np.random.default_rng(1)
        samples = gen.poisson(20, size=5000)
        estimate = hill_tail_exponent(samples)
        assert estimate > 4.0

    def test_degenerate_tail_is_inf(self):
        assert hill_tail_exponent([7] * 100) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hill_tail_exponent([1, 2, 3])  # too few
        with pytest.raises(ConfigurationError):
            hill_tail_exponent([1] * 100, top_fraction=0.0)


class TestGini:
    def test_equal_degrees_zero(self):
        assert degree_gini([5] * 50) == pytest.approx(0.0, abs=1e-9)

    def test_single_hub_near_one(self):
        degrees = [0] * 99 + [1000]
        assert degree_gini(degrees) > 0.95

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            degree_gini([])

    def test_all_zero(self):
        assert degree_gini([0, 0, 0]) == 0.0


class TestCalibrationReport:
    def test_twitter_like_is_heavy_tailed(self):
        graph = twitter_like(3000, rng=2)
        report = calibration_report(graph)
        assert report.heavy_tailed, str(report)
        assert report.mean_degree_ratio == pytest.approx(1.0, abs=0.4)

    def test_erdos_renyi_is_not(self):
        graph = random_graph(3000, 3000 * 22, rng=3)
        report = calibration_report(graph)
        assert not report.heavy_tailed, str(report)

    def test_report_fields(self):
        graph = twitter_like(1000, rng=4)
        report = calibration_report(graph)
        assert report.num_nodes == 1000
        assert report.max_out_degree >= report.mean_out_degree
        assert 0.0 <= report.gini <= 1.0
