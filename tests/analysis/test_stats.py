"""Tests for the statistical machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    GainSummary,
    bootstrap_ci,
    paired_permutation_test,
    summarize_gain,
)
from repro.core.exceptions import ConfigurationError


class TestBootstrapCI:
    def test_contains_mean_for_tight_data(self):
        low, high = bootstrap_ci([5.0] * 20, rng=0)
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(5.0)

    def test_interval_orders(self):
        gen = np.random.default_rng(1)
        samples = gen.normal(10, 2, size=50)
        low, high = bootstrap_ci(samples, rng=0)
        assert low <= samples.mean() <= high

    def test_single_sample_degenerate(self):
        assert bootstrap_ci([3.0], rng=0) == (3.0, 3.0)

    def test_coverage_monte_carlo(self):
        """~95% of intervals should cover the true mean."""
        gen = np.random.default_rng(2)
        covered = 0
        for trial in range(100):
            samples = gen.normal(0.0, 1.0, size=30)
            low, high = bootstrap_ci(samples, rng=trial)
            covered += low <= 0.0 <= high
        assert covered >= 85

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], num_resamples=0)

    def test_determinism(self):
        samples = list(np.random.default_rng(3).normal(size=40))
        assert bootstrap_ci(samples, rng=7) == bootstrap_ci(samples, rng=7)


class TestPairedPermutationTest:
    def test_clear_positive_effect(self):
        a = [10.0 + i * 0.1 for i in range(12)]
        b = [1.0 + i * 0.1 for i in range(12)]
        assert paired_permutation_test(a, b, alternative="greater") < 0.01

    def test_no_effect_is_insignificant(self):
        base = np.arange(14, dtype=float)
        # Perfectly balanced paired differences (+1/-1 alternating):
        # the observed mean is 0, the weakest possible evidence.
        other = base + np.tile([1.0, -1.0], 7)
        p = paired_permutation_test(base, other, alternative="two-sided")
        assert p > 0.5

    def test_less_alternative(self):
        a = [1.0] * 10
        b = [5.0] * 10
        assert paired_permutation_test(a, b, alternative="less") < 0.01
        assert paired_permutation_test(a, b, alternative="greater") > 0.99

    def test_exact_small_n_matches_hand_count(self):
        # n=2, diffs (1, 1): null means over sign flips: {1, 0, 0, -1};
        # observed 1 -> one-sided p = 1/4.
        p = paired_permutation_test([2.0, 2.0], [1.0, 1.0], alternative="greater")
        assert p == pytest.approx(0.25)

    def test_large_n_uses_monte_carlo(self):
        gen = np.random.default_rng(5)
        a = gen.normal(1.0, 0.1, size=50)
        b = gen.normal(0.0, 0.1, size=50)
        p = paired_permutation_test(a, b, rng=0)
        assert p < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_permutation_test([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            paired_permutation_test([], [])
        with pytest.raises(ConfigurationError):
            paired_permutation_test([1.0], [1.0], alternative="sideways")

    @given(
        diffs=st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_p_value_in_unit_interval(self, diffs):
        base = np.zeros(len(diffs))
        p = paired_permutation_test(np.asarray(diffs), base)
        assert 0.0 <= p <= 1.0


class TestSummarizeGain:
    def test_significant_gain(self):
        honest = [1.0] * 15
        deviant = [3.0 + 0.01 * i for i in range(15)]
        summary = summarize_gain(honest, deviant, rng=0)
        assert summary.mean_gain == pytest.approx(2.07, abs=0.01)
        assert summary.significant
        assert summary.ci_low <= summary.mean_gain <= summary.ci_high

    def test_no_gain_is_insignificant(self):
        gen = np.random.default_rng(6)
        honest = gen.normal(5, 1, size=20)
        deviant = honest - 0.5  # attack strictly loses
        summary = summarize_gain(honest, deviant, rng=0)
        assert not summary.significant
        assert summary.mean_gain < 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize_gain([], [])
        with pytest.raises(ConfigurationError):
            summarize_gain([1.0], [1.0, 2.0])
