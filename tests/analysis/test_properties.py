"""Tests for the empirical property checkers."""

import pytest

from repro.analysis.properties import (
    check_individual_rationality,
    check_solicitation_incentive,
    misreport_violation_rate,
    sybil_violation_rate,
)
from repro.baselines.kth_price import KthPriceAuction
from repro.core.outcome import MechanismOutcome
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


class TestIndividualRationality:
    def test_holds_for_nonnegative_utilities(self):
        out = MechanismOutcome(
            allocation={1: 1}, auction_payments={1: 3.0}, payments={1: 3.0}
        )
        report = check_individual_rationality(out, {1: 2.0})
        assert report.holds

    def test_detects_violation(self):
        out = MechanismOutcome(
            allocation={1: 2}, auction_payments={1: 3.0}, payments={1: 3.0}
        )
        report = check_individual_rationality(out, {1: 2.0})
        assert not report.holds
        assert "1" in report.detail

    def test_empty_outcome_holds(self):
        assert check_individual_rationality(MechanismOutcome(), {}).holds


class TestSolicitationIncentive:
    def _setting(self):
        tree = IncentiveTree()
        tree.attach(1, ROOT)
        tree.attach(2, ROOT)
        asks = {1: Ask(0, 1, 2.0), 2: Ask(0, 1, 3.0)}
        return Job([1, 1]), asks, tree

    def test_rit_satisfies_theorem_4(self):
        job, asks, tree = self._setting()
        mech = RIT(round_budget="until-complete")
        report = check_solicitation_incentive(
            mech, job, asks, tree,
            solicitor=1,
            # Different type -> referral value; capacity 2 so the type can
            # clear (a single unit ask never survives consensus flooring).
            newcomer_ask=Ask(1, 2, 1.0),
            rng=3, reps=10,
        )
        assert report.holds, report.detail

    def test_rit_gains_from_own_referral(self):
        """Direct Theorem 4 check on a scenario where the newcomer's
        auction payment is deterministic enough to compare."""
        tree = IncentiveTree()
        tree.attach(1, ROOT)
        tree.attach(2, ROOT)
        tree.attach(3, ROOT)
        asks = {
            1: Ask(0, 2, 1.0),
            2: Ask(0, 2, 2.0),
            3: Ask(1, 2, 1.0),
        }
        job = Job([2, 1])
        mech = RIT(round_budget="until-complete")
        report = check_solicitation_incentive(
            mech, job, asks, tree,
            solicitor=1,
            newcomer_ask=Ask(1, 2, 0.5),
            rng=5, reps=20,
        )
        assert report.holds, report.detail

    def test_unknown_solicitor_rejected(self):
        job, asks, tree = self._setting()
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            check_solicitation_incentive(
                RIT(), job, asks, tree, solicitor=99,
                newcomer_ask=Ask(0, 1, 1.0),
            )


class TestViolationRates:
    @pytest.fixture(scope="class")
    def scenario(self):
        return paper_scenario(
            150,
            Job.uniform(3, 10),
            rng=8,
            distribution=UserDistribution(num_types=3),
        )

    def test_misreport_rate_in_unit_interval(self, scenario):
        mech = RIT(round_budget="until-complete")
        rate = misreport_violation_rate(
            mech, scenario, user_id=0,
            deviations=(1.5,), trials=3, reps=2, rng=0,
        )
        assert 0.0 <= rate <= 1.0

    def test_sybil_rate_in_unit_interval(self, scenario):
        mech = RIT(round_budget="until-complete")
        victim = next(
            u.user_id for u in scenario.population if u.capacity >= 3
        )
        rate = sybil_violation_rate(
            mech, scenario, victim=victim,
            identity_counts=(2,), trials=3, reps=2, rng=0,
        )
        assert 0.0 <= rate <= 1.0

    def test_trials_validation(self, scenario):
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            misreport_violation_rate(
                RIT(), scenario, user_id=0, deviations=(1.0,), trials=0
            )
        with pytest.raises(ConfigurationError):
            sybil_violation_rate(
                RIT(), scenario, victim=0, identity_counts=(2,), trials=0
            )
