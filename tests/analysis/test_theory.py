"""Tests for the theory-vs-practice helpers."""

import pytest

from repro.analysis.theory import (
    BoundSummary,
    budget_table,
    remark61_examples,
    summarize_bounds,
)
from repro.core.rit import RIT
from repro.core.types import Job


class TestRemark61Anchors:
    def test_values_match_paper(self):
        anchors = remark61_examples()
        assert anchors["kmax10_mi1000"] == pytest.approx(0.98, abs=0.005)
        assert anchors["k10_denom50"] == pytest.approx(0.59, abs=0.005)


class TestSummarizeBounds:
    def test_per_type_rows(self):
        mech = RIT(h=0.8, round_budget="lemma")
        job = Job([5000, 0, 1000])
        rows = summarize_bounds(mech, job, k_max=20)
        assert [r.task_type for r in rows] == [0, 2]  # empty type skipped
        assert rows[0].m_i == 5000
        # With only 3 types, eta = 0.8^(1/3) is laxer than the paper's
        # 10-type setup, so the budget is larger than the Fig. 6 value (2).
        assert rows[0].lemma_budget == 9
        assert rows[0].effective_budget == 9
        assert 0 < rows[0].eta < 1

    def test_effective_budget_reflects_policy(self):
        mech = RIT(h=0.8, round_budget="paper")
        rows = summarize_bounds(mech, Job([100]), k_max=20)
        assert rows[0].lemma_budget == 0
        assert rows[0].effective_budget == 1


class TestBudgetTable:
    def test_rows_align_with_inputs(self):
        rows = budget_table(0.8, 10, 20, [100, 5000])
        assert [r[0] for r in rows] == [100, 5000]
        assert rows[0][2] == 0
        assert rows[1][2] == 2

    def test_bounds_increase_with_m(self):
        rows = budget_table(0.8, 10, 10, [100, 1000, 10000])
        bounds = [r[1] for r in rows]
        assert bounds == sorted(bounds)
