"""Engine behavior: discovery, module resolution, directives, parse errors."""

from pathlib import Path

import pytest

from repro.devtools.lint import (
    Finding,
    LintReport,
    Severity,
    build_context,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    module_for_path,
)
from repro.devtools.lint.context import module_in
from repro.devtools.lint.model import PARSE_ERROR_ID

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).parent / "fixtures"


class TestModuleResolution:
    def test_src_root_is_stripped(self):
        path = REPO / "src" / "repro" / "core" / "rit.py"
        assert module_for_path(path) == "repro.core.rit"

    def test_init_maps_to_package(self):
        path = REPO / "src" / "repro" / "core" / "__init__.py"
        assert module_for_path(path) == "repro.core"

    def test_tests_keep_their_prefix(self):
        assert module_for_path(Path(__file__)).startswith("tests.devtools")

    def test_module_in_prefix_semantics(self):
        assert module_in("repro.core.rit", "repro.core")
        assert module_in("repro.core", "repro.core")
        assert not module_in("repro.corelib", "repro.core")
        assert not module_in("tests.core", "repro.core")

    def test_module_directive_overrides_location(self, tmp_path):
        target = tmp_path / "anywhere.py"
        target.write_text("# rit: module=repro.core.injected\nx = 1\n")
        assert build_context(target).module == "repro.core.injected"


class TestDiscovery:
    def test_fixture_dirs_pruned_from_directory_walks(self):
        files = list(iter_python_files([Path(__file__).parent]))
        assert all("fixtures" not in p.parts for p in files)
        assert any(p.name == "test_engine.py" for p in files)

    def test_explicit_file_bypasses_exclusions(self):
        target = FIXTURES / "rit001_bad.py"
        assert list(iter_python_files([target])) == [target]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([Path("definitely/not/here")]))

    def test_duplicates_are_collapsed(self):
        target = FIXTURES / "rit001_bad.py"
        assert len(list(iter_python_files([target, target]))) == 1


class TestParseErrors:
    def test_syntax_error_becomes_rit000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings = lint_file(bad)
        assert len(findings) == 1
        assert findings[0].rule_id == PARSE_ERROR_ID
        assert findings[0].severity is Severity.ERROR
        assert findings[0].line == 1


class TestReport:
    def test_counts_and_sorting(self):
        report = lint_paths([FIXTURES / "rit001_bad.py", FIXTURES / "rit002_bad.py"])
        assert report.files_checked == 2
        assert len(report) == report.error_count > 0
        ordered = report.sorted()
        assert ordered == sorted(ordered, key=lambda f: f.sort_key)
        assert set(report.by_rule()) == {"RIT001", "RIT002"}

    def test_format_text_lists_file_line(self):
        report = lint_paths([FIXTURES / "rit006_bad.py"])
        text = report.format_text(statistics=True)
        assert "rit006_bad.py:8:" in text
        assert "RIT006" in text

    def test_clean_report_is_falsy(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        report = lint_paths([clean])
        assert not report
        assert "clean" in report.format_text()

    def test_json_round_trip(self):
        import json

        report = lint_paths([FIXTURES / "rit005_bad.py"])
        payload = json.loads(report.format_json())
        assert payload["files_checked"] == 1
        assert all(f["rule"] == "RIT005" for f in payload["findings"])


class TestLintSource:
    def test_scoped_rule_needs_module_directive(self):
        snippet = "import time\nt = time.time()\n"
        assert lint_source(snippet) == []  # module '<string>': out of scope
        scoped = "# rit: module=repro.core.x\n" + snippet
        assert [f.rule_id for f in lint_source(scoped)] == ["RIT005"]

    def test_finding_format_is_clickable(self):
        finding = Finding("src/x.py", 3, 7, "RIT001", "boom")
        assert finding.format() == "src/x.py:3:7: RIT001 boom"

    def test_report_type_reexported(self):
        assert isinstance(lint_paths([]), LintReport)
