"""Incremental cache behaviour: warm runs re-parse only changed files.

This is the analyzer's core performance contract (the ISSUE's acceptance
criterion): ``files_parsed`` counts real parses, so a warm rerun over an
unchanged tree must report zero, and touching one file must re-parse
exactly that file while findings stay correct.
"""

from pathlib import Path

from repro.devtools.analysis import analyze_paths
from repro.devtools.analysis.cache import SummaryCache


def _write_project(root: Path) -> None:
    (root / "svc.py").write_text(
        "# rit: module=repro.service.cachesvc\n"
        "from repro.cacheutil import flush\n"
        "async def serve():\n"
        "    flush()\n"
    )
    (root / "util.py").write_text(
        "# rit: module=repro.cacheutil\n"
        "import time\n"
        "def flush():\n"
        "    time.sleep(0.01)\n"
    )


def test_warm_run_parses_nothing(tmp_path):
    _write_project(tmp_path)
    cache = tmp_path / "cache.json"
    cold = analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    assert cold.files_parsed == 2 and cold.cache_hits == 0
    warm = analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    assert warm.files_parsed == 0 and warm.cache_hits == 2
    # The interprocedural result is identical either way.
    assert [f.rule_id for f in warm.findings] == ["RIT009"]
    assert [f.rule_id for f in cold.findings] == ["RIT009"]


def test_editing_one_file_reparses_only_that_file(tmp_path):
    _write_project(tmp_path)
    cache = tmp_path / "cache.json"
    analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    # Fix the blocking call; only util.py changed.
    (tmp_path / "util.py").write_text(
        "# rit: module=repro.cacheutil\n"
        "def flush():\n"
        "    return None\n"
    )
    rerun = analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    assert rerun.files_parsed == 1 and rerun.cache_hits == 1
    assert rerun.findings == []


def test_deleted_files_are_pruned_from_the_cache(tmp_path):
    _write_project(tmp_path)
    cache = tmp_path / "cache.json"
    analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    (tmp_path / "util.py").unlink()
    analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    entries = SummaryCache.load(cache).entries
    assert set(entries) == {"svc.py"}


def test_schema_mismatch_discards_cache(tmp_path):
    _write_project(tmp_path)
    cache = tmp_path / "cache.json"
    analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    text = cache.read_text().replace('"schema": 1', '"schema": 999')
    cache.write_text(text)
    rerun = analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    assert rerun.files_parsed == 2 and rerun.cache_hits == 0


def test_corrupt_cache_is_ignored(tmp_path):
    _write_project(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{ not json")
    result = analyze_paths([tmp_path], root=tmp_path, cache_path=cache)
    assert result.files_parsed == 2
    assert [f.rule_id for f in result.findings] == ["RIT009"]
