"""Each whole-program rule fires on its fixture mini-project — and only
where intended.

The mini-projects under ``analysis_fixtures/`` use ``# rit: module=``
overrides to pose as mechanism/service modules and import each other by
those declared paths, so cross-module resolution is exercised without the
files being importable.  ``# expect: RIT00X`` comments in the fixtures
mark the lines that must be reported; the tests assert the exact
(file, line, rule) set, so accidental extra findings fail too.
"""

from pathlib import Path

from repro.devtools.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def _findings(project: str):
    result = analyze_paths([FIXTURES / project], cache_path=None)
    return result.findings


def _expected(project: str):
    expected = []
    for path in sorted((FIXTURES / project).glob("*.py")):
        for lineno, text in enumerate(path.read_text().splitlines(), start=1):
            if "# expect:" in text:
                rule_id = text.rsplit("# expect:", 1)[1].strip()
                expected.append((path.name, lineno, rule_id))
    return expected


def _actual(project: str):
    return [
        (Path(f.path).name, f.line, f.rule_id) for f in _findings(project)
    ]


class TestFixturesFireExactly:
    def test_rit009(self):
        assert _actual("rit009") == _expected("rit009")

    def test_rit010(self):
        assert _actual("rit010") == _expected("rit010")

    def test_rit011(self):
        assert _actual("rit011") == _expected("rit011")

    def test_rit012(self):
        assert _actual("rit012") == _expected("rit012")

    def test_rit013(self):
        assert _actual("rit013") == _expected("rit013")


class TestInterproceduralMessages:
    def test_rit009_message_names_the_call_chain(self):
        (finding,) = _findings("rit009")
        assert (
            "repro.service.fx9svc.serve_epochs -> repro.fx9util.flush_log"
            in finding.message
        )

    def test_rit010_message_names_the_entry_point(self):
        (finding,) = _findings("rit010")
        assert "repro.core.fx10entry.run_mechanism" in finding.message

    def test_rit011_message_names_the_worker_chain(self):
        finding = next(
            f for f in _findings("rit011") if "_RESULTS" in f.message
        )
        assert "repro.service.workers.run_epoch_shard" in finding.message

    def test_rit011_unknown_role_names_the_vocabulary(self):
        finding = next(
            f for f in _findings("rit011") if "_SCRATCH" in f.message
        )
        assert "somebody-else" in finding.message
        assert "main-thread, import-time-only, epoch" in finding.message

    def test_rit012_message_names_the_cross_module_callee(self):
        (finding,) = _findings("rit012")
        assert "repro.fx12quotes.settle" in finding.message

    def test_rit013_message_names_the_function(self):
        (finding,) = _findings("rit013")
        assert "repro.core.engine.select_winners" in finding.message


class TestExemptions:
    """The deliberate non-findings in the fixtures stay silent."""

    def test_unreachable_blocking_call_not_reported(self):
        # util.py also holds unrelated_sleeper(); only flush_log is reported.
        assert len(_findings("rit009")) == 1

    def test_seeded_rng_not_reported(self):
        assert len(_findings("rit010")) == 1

    def test_owner_marker_exempts_mutable(self):
        findings = _findings("rit011")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "SEEN_TYPES" not in messages
        assert "_EPOCH_VIEW" not in messages

    def test_non_monetary_result_not_reported(self):
        assert len(_findings("rit012")) == 1

    def test_traced_function_not_reported(self):
        findings = _findings("rit013")
        assert len(findings) == 1
        assert "clear_round" not in findings[0].message


def test_fixtures_are_excluded_from_parent_discovery():
    """Walking tests/devtools must skip analysis_fixtures entirely."""
    result = analyze_paths([FIXTURES.parent], cache_path=None)
    fixture_files = {
        Path(f.path).name for f in result.findings if "analysis_fixtures" in f.path
    }
    assert fixture_files == set()
