"""Suppression semantics and CLI exit codes (satellite acceptance tests).

* ``# rit: noqa[RIT00X]`` silences exactly that rule on exactly that line;
* a clean tree exits 0, findings exit 1, usage errors exit 2;
* the ``rit lint`` subcommand and ``python -m repro.devtools.lint`` agree.
"""

from pathlib import Path

from repro.cli import main as rit_main
from repro.devtools.lint import lint_file, lint_source
from repro.devtools.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

#: Mechanism-scoped snippet with two *different* violations on one line:
#: an unseeded default_rng (RIT001) feeding a monetary comparison (RIT002).
TWO_RULES_ONE_LINE = (
    "# rit: module=repro.core.noqa_probe\n"
    "import numpy as np\n"
    "def f(payment):\n"
    "    return payment == np.random.default_rng().random(){noqa}\n"
)


def _rules(source: str):
    return sorted(f.rule_id for f in lint_source(source))


class TestNoqa:
    def test_unsuppressed_line_reports_both_rules(self):
        assert _rules(TWO_RULES_ONE_LINE.format(noqa="")) == ["RIT001", "RIT002"]

    def test_noqa_silences_exactly_one_rule(self):
        silenced = TWO_RULES_ONE_LINE.format(noqa="  # rit: noqa[RIT001]")
        assert _rules(silenced) == ["RIT002"]

    def test_noqa_for_other_rule_changes_nothing(self):
        wrong = TWO_RULES_ONE_LINE.format(noqa="  # rit: noqa[RIT005]")
        assert _rules(wrong) == ["RIT001", "RIT002"]

    def test_noqa_list_silences_each_named_rule(self):
        both = TWO_RULES_ONE_LINE.format(noqa="  # rit: noqa[RIT001, RIT002]")
        assert _rules(both) == []

    def test_bare_noqa_silences_every_rule_on_the_line(self):
        bare = TWO_RULES_ONE_LINE.format(noqa="  # rit: noqa")
        assert _rules(bare) == []

    def test_noqa_only_affects_its_own_line(self, tmp_path):
        target = tmp_path / "two_lines.py"
        target.write_text(
            "# rit: module=repro.core.noqa_lines\n"
            "import numpy as np\n"
            "a = np.random.default_rng()  # rit: noqa[RIT001]\n"
            "b = np.random.default_rng()\n"
        )
        findings = lint_file(target)
        assert [(f.line, f.rule_id) for f in findings] == [(4, "RIT001")]


class TestNoqaStatementSpan:
    """A noqa anywhere on a multi-line statement covers the whole span."""

    MULTILINE = (
        "# rit: module=repro.core.noqa_span\n"
        "import numpy as np\n"
        "values = np.cumsum({noqa_first}\n"
        "    np.random.default_rng().random(8){noqa_mid}\n"
        ")\n"
    )

    def test_finding_on_continuation_line_is_reported_without_noqa(self):
        source = self.MULTILINE.format(noqa_first="", noqa_mid="")
        assert [f.line for f in lint_source(source)] == [4]

    def test_noqa_on_first_line_covers_the_continuation(self):
        source = self.MULTILINE.format(
            noqa_first="  # rit: noqa[RIT001]", noqa_mid=""
        )
        assert _rules(source) == []

    def test_noqa_on_inner_line_also_covers_the_statement(self):
        source = self.MULTILINE.format(
            noqa_first="", noqa_mid="  # rit: noqa[RIT001]"
        )
        assert _rules(source) == []

    def test_def_header_noqa_does_not_silence_the_body(self):
        source = (
            "# rit: module=repro.core.noqa_hdr\n"
            "import numpy as np\n"
            "def f():  # rit: noqa[RIT001]\n"
            "    return np.random.default_rng()\n"
        )
        assert _rules(source) == ["RIT001"]


class TestEmptyNoqaWarns:
    # The directive is assembled from two fragments so this test file's
    # own raw lines never contain an empty-bracket noqa themselves.
    EMPTY = (
        "# rit: module=repro.core.noqa_empty\n"
        "import numpy as np\n"
        "a = np.random.default_rng()  # rit: " + "noqa[]\n"
    )

    def test_empty_rule_list_suppresses_nothing_and_warns(self):
        findings = lint_source(self.EMPTY)
        assert sorted(f.rule_id for f in findings) == ["RIT001", "RIT099"]
        rit099 = next(f for f in findings if f.rule_id == "RIT099")
        assert rit099.line == 3
        assert "suppresses nothing" in rit099.message


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert lint_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = lint_main([str(FIXTURES / "rit001_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "RIT001" in out

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert lint_main([str(clean), "--select", "RIT999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2
        capsys.readouterr()

    def test_select_restricts_rules(self, capsys):
        path = str(FIXTURES / "rit002_bad.py")
        assert lint_main([path, "--select", "RIT001"]) == 0
        assert lint_main([path, "--select", "RIT002"]) == 1
        capsys.readouterr()

    def test_ignore_excludes_rules(self, capsys):
        path = str(FIXTURES / "rit006_bad.py")
        assert lint_main([path, "--ignore", "RIT006"]) == 0
        capsys.readouterr()

    def test_rit_cli_lint_subcommand_matches(self, capsys):
        assert rit_main(["lint", str(FIXTURES / "rit003_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RIT003" in out

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RIT001", "RIT002", "RIT003", "RIT004", "RIT005", "RIT006"):
            assert rule_id in out
