"""Fixture-driven rule tests.

Every fixture under ``tests/devtools/fixtures/`` marks its deliberate
violations with a trailing ``# expect: RIT00X`` comment (comma-separated
ids for multiple rules on one line).  The test lints each fixture and
demands the finding set equals the marker set *exactly* — missing
detections and extra false positives both fail, with line numbers.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.lint import RULES_BY_ID, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def fixture_files():
    return sorted(FIXTURES.rglob("*.py"))


def expected_markers(path: Path):
    """{(line, rule_id)} declared by the fixture's # expect: comments."""
    expected = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if not match:
            continue
        for rule_id in match.group(1).split(","):
            rule_id = rule_id.strip()
            if rule_id:
                expected.add((lineno, rule_id))
    return expected


@pytest.mark.parametrize(
    "path", fixture_files(), ids=lambda p: str(p.relative_to(FIXTURES))
)
def test_fixture_findings_match_markers(path):
    expected = expected_markers(path)
    actual = {(f.line, f.rule_id) for f in lint_file(path)}
    missing = expected - actual
    extra = actual - expected
    assert not missing, f"linter missed declared violations: {sorted(missing)}"
    assert not extra, f"linter reported unexpected findings: {sorted(extra)}"


def test_every_rule_has_bad_fixture_coverage():
    """Acceptance: fixtures trigger every one of RIT001-RIT006."""
    covered = set()
    for path in fixture_files():
        covered |= {rule_id for _, rule_id in expected_markers(path)}
    assert covered == set(RULES_BY_ID), (
        f"rules without fixture coverage: {sorted(set(RULES_BY_ID) - covered)}"
    )


def test_good_fixtures_are_clean():
    for path in fixture_files():
        if "_good" in path.stem:
            assert not expected_markers(path)
            assert lint_file(path) == []


def test_findings_report_real_locations():
    """file:line output points at the offending statement, not line 1."""
    path = FIXTURES / "rit001_bad.py"
    findings = lint_file(path)
    assert findings
    for finding in findings:
        assert finding.path == str(path)
        assert finding.line > 1  # module docstring/header precedes them
        assert finding.column >= 1
