# rit: module=repro.service.fx9svc
"""RIT009 fixture: a service coroutine calling a blocking helper module."""

from repro.fx9util import flush_log


async def serve_epochs() -> None:
    flush_log("epoch closed")
