# rit: module=repro.fx9util
"""RIT009 fixture: sync helper that blocks — fine alone, fatal on the loop."""

import time


def flush_log(message: str) -> None:
    time.sleep(0.01)  # expect: RIT009
    _ = message


def unrelated_sleeper() -> None:
    # Not reachable from any coroutine: must NOT be reported.
    time.sleep(0.01)
