# rit: module=repro.fx12quotes
"""RIT012 fixture: a neutrally-named function that returns money."""


def settle(asks):
    payment = min(asks)
    return payment


def headcount(asks):
    # Returns a count, not money: comparing it exactly is fine.
    return len(asks)
