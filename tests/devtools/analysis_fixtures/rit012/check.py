# rit: module=repro.fx12check
"""RIT012 fixture: exact equality on a cross-module monetary result."""

from repro.fx12quotes import headcount, settle


def audit(asks, expected):
    return settle(asks) == expected  # expect: RIT012


def tally(asks, expected):
    return headcount(asks) == expected  # non-monetary: must NOT be reported
