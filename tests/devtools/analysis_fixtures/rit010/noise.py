# rit: module=repro.fx10noise
"""RIT010 fixture: ambient RNG hidden one module away from the entry point."""

import numpy as np


def jitter() -> float:
    rng = np.random.default_rng()  # expect: RIT010
    return float(rng.normal())


def seeded_jitter(seed: int) -> float:
    # Seeded construction: must NOT be reported.
    rng = np.random.default_rng(seed)
    return float(rng.normal())
