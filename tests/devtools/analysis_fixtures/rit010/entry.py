# rit: module=repro.core.fx10entry
"""RIT010 fixture: a mechanism entry point pulling in tainted noise."""

from repro.fx10noise import jitter


def run_mechanism(asks):
    return [a + jitter() for a in asks]
