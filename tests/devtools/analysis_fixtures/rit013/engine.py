# rit: module=repro.core.engine
"""RIT013 fixture: one bare hot-path function, one instrumented one."""


def select_winners(asks, capacity):  # expect: RIT013
    winners = []
    total = 0
    rejected = 0
    for uid in asks:
        if total >= capacity:
            rejected += 1
            continue
        winners.append(uid)
        total += 1
    return winners, rejected


def clear_round(asks, capacity, tracer):
    # Reaches a tracer span: must NOT be reported.
    winners = []
    total = 0
    rejected = 0
    with tracer.span("clear_round"):
        for uid in asks:
            if total >= capacity:
                rejected += 1
                continue
            winners.append(uid)
            total += 1
    return winners, rejected
