# rit: module=repro.service.workers
"""RIT011 fixture: the shard-worker entry calling into shared module state."""

from repro.fx11cache import record_result


def run_epoch_shard(shard):
    record_result(shard.type_id, shard.total)
