# rit: module=repro.fx11cache
"""RIT011 fixture: unowned module-level mutables touched from workers."""

_RESULTS = {}
SEEN_TYPES = []  # rit: owner=main-thread
_EPOCH_VIEW = {}  # rit: owner=epoch
_SCRATCH = []  # rit: owner=somebody-else  # expect: RIT011


def record_result(type_id, total):
    _RESULTS[type_id] = total  # expect: RIT011
    SEEN_TYPES.append(type_id)  # owned: must NOT be reported
    _EPOCH_VIEW[type_id] = total  # epoch-owned: must NOT be reported


def summary():
    return dict(_RESULTS), list(SEEN_TYPES), dict(_EPOCH_VIEW)
