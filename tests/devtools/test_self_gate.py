"""The linter gates its own repository: the live tree must be clean.

This is the tripwire the whole subsystem exists for — any future PR that
introduces an unseeded RNG, a raw monetary ``==``, a frozen-instance
mutation, export drift, a wall-clock read in core, or a swallowed
exception fails here with a ``file:line`` pointer.

``ruff`` / ``mypy`` gates run only where those tools are installed (they
are optional dev dependencies; the container image may not carry them).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import lint_paths

REPO = Path(__file__).resolve().parent.parent.parent
TREE = [REPO / part for part in ("src", "tests", "benchmarks", "examples")]


def test_live_tree_is_lint_clean():
    report = lint_paths(TREE)
    assert report.files_checked > 100  # the walk really covered the repo
    assert not report, "rit lint findings on the live tree:\n" + "\n".join(
        f.format() for f in report
    )


def test_lint_cli_exits_zero_on_live_tree(capsys):
    from repro.devtools.lint.cli import main as lint_main

    assert lint_main([str(p) for p in TREE]) == 0
    capsys.readouterr()


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_core_strict():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/core"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
