"""Smoke tests for the ``rit bench`` performance baseline tooling."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.exceptions import ConfigurationError
from repro.devtools.bench import (
    BENCH_SCHEMA_VERSION,
    SCENARIO_PRESETS,
    run_scaling_bench,
    run_scenario_bench,
    validate_bench_schema,
    write_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
COMMITTED_BENCH = REPO_ROOT / "BENCH_RIT.json"

TINY = dict(users=80, types=2, tasks_per_type=5, reps=2, seed=0)


class TestRunScalingBench:
    def test_tiny_config_produces_valid_document(self):
        doc = run_scaling_bench(**TINY)
        assert validate_bench_schema(doc) == []
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert set(doc["engines"]) == {"sorted", "reference", "columnar"}
        assert doc["speedup_sorted_vs_reference"] > 0.0
        assert doc["speedup_columnar_vs_sorted"] > 0.0
        assert doc["speedup_vs_pre_pr"] > 0.0
        sorted_doc = doc["engines"]["sorted"]
        assert sorted_doc["completed_all_reps"] is True
        assert sorted_doc["seconds"]["min"] <= sorted_doc["seconds"]["p50"]
        assert set(sorted_doc["stages"]) == {
            "sample",
            "consensus",
            "select",
            "consume",
        }
        # The reference engine reports no stage breakdown.
        assert doc["engines"]["reference"]["stages"] == {}
        # The columnar engine reports its amortized store on the side.
        columnar_doc = doc["engines"]["columnar"]
        assert set(columnar_doc["stages"]) == set(sorted_doc["stages"])
        assert columnar_doc["store_build_seconds"] >= 0.0
        assert columnar_doc["store_bytes"] > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            run_scaling_bench(**{**TINY, "reps": 0})
        with pytest.raises(ConfigurationError):
            run_scaling_bench(**{**TINY, "engines": ("bogus",)})

    def test_single_engine_omits_speedups(self):
        doc = run_scaling_bench(**TINY, engines=("reference",))
        assert "speedup_sorted_vs_reference" not in doc
        assert "speedup_vs_pre_pr" not in doc
        assert validate_bench_schema(doc) == []


class TestEngineSubsets:
    def test_unrequested_engines_marked_skipped(self):
        doc = run_scaling_bench(**TINY, engines=("sorted", "columnar"))
        assert doc["engines"]["reference"] == {"skipped": True}
        assert "speedup_sorted_vs_reference" not in doc
        assert doc["speedup_columnar_vs_sorted"] > 0.0
        assert validate_bench_schema(doc) == []

    def test_skipped_marker_must_carry_no_measurements(self):
        doc = run_scaling_bench(**TINY, engines=("sorted",))
        doc["engines"]["reference"] = {"skipped": True, "seconds": {}}
        assert any(
            "no measurements" in e for e in validate_bench_schema(doc)
        )

    def test_all_engines_skipped_flagged(self):
        doc = run_scaling_bench(**TINY, engines=("sorted",))
        for name in doc["engines"]:
            doc["engines"][name] = {"skipped": True}
        assert any(
            "every engine is skipped" in e for e in validate_bench_schema(doc)
        )

    def test_columnar_without_store_fields_flagged(self):
        doc = run_scaling_bench(**TINY, engines=("sorted", "columnar"))
        del doc["engines"]["columnar"]["store_bytes"]
        assert any("store_bytes" in e for e in validate_bench_schema(doc))


class TestScenarios:
    def test_presets_cover_the_issue_scales(self):
        assert SCENARIO_PRESETS["100k"]["users"] == 100_000
        assert SCENARIO_PRESETS["1m"]["users"] == 1_000_000
        for preset in SCENARIO_PRESETS.values():
            assert set(preset["engines"]) == {"sorted", "columnar"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario_bench("bogus")

    def test_unknown_scenario_name_flagged(self):
        doc = run_scaling_bench(**TINY)
        doc["scenarios"] = {"bogus": {"config": TINY, "engines": {}}}
        errors = validate_bench_schema(doc)
        assert any("unknown scenario preset" in e for e in errors)

    def test_scenario_engines_reuse_the_engine_schema(self):
        doc = run_scaling_bench(**TINY)
        doc["scenarios"] = {
            "100k": {
                "config": dict(
                    TINY, scenario_seed=2, round_budget="until-complete"
                ),
                "engines": {"sorted": {"skipped": True}},
            }
        }
        errors = validate_bench_schema(doc)
        assert any(
            "scenarios.100k.engines: every engine is skipped" in e
            for e in errors
        )


class TestValidateSchema:
    def test_rejects_non_object(self):
        assert validate_bench_schema([]) != []

    def test_reports_missing_keys(self):
        errors = validate_bench_schema({})
        assert any("schema_version" in e for e in errors)
        assert any("engines" in e for e in errors)

    def test_flags_unknown_engine_and_stage(self):
        doc = run_scaling_bench(**TINY)
        doc["engines"]["bogus"] = doc["engines"]["sorted"]
        assert any("unknown engine" in e for e in validate_bench_schema(doc))


def valid_service_section():
    return {
        "config": {"users": 400, "seed": 0},
        "events": {
            "generated": 800,
            "offered": 800,
            "accepted": 780,
            "invalid": 5,
            "rejected": 15,
            "applied": 770,
            "refused": 10,
        },
        "events_per_sec": 50_000.0,
        "elapsed_seconds": 0.016,
        "epochs": {"count": 3, "completed": 2, "voided": 1},
        "epoch_latency_seconds": {
            "mean": 0.004,
            "min": 0.001,
            "p50": 0.003,
            "p95": 0.009,
            "max": 0.01,
        },
        "queue": {"capacity": 512, "highwater": 200},
    }


class TestValidateServiceSection:
    def base_doc(self):
        doc = run_scaling_bench(**TINY)
        doc["service"] = valid_service_section()
        return doc

    def test_valid_section_accepted(self):
        assert validate_bench_schema(self.base_doc()) == []

    def test_docs_without_service_section_stay_valid(self):
        assert validate_bench_schema(run_scaling_bench(**TINY)) == []

    def test_unbalanced_event_counts_flagged(self):
        doc = self.base_doc()
        doc["service"]["events"]["rejected"] = 0  # silently dropped events
        assert any("balance" in e for e in validate_bench_schema(doc))

    def test_highwater_above_capacity_flagged(self):
        doc = self.base_doc()
        doc["service"]["queue"]["highwater"] = 9999
        assert any("unbounded" in e for e in validate_bench_schema(doc))

    def test_missing_latency_stat_flagged(self):
        doc = self.base_doc()
        del doc["service"]["epoch_latency_seconds"]["p95"]
        errors = validate_bench_schema(doc)
        assert any("p95" in e for e in errors)

    def test_non_positive_throughput_flagged(self):
        doc = self.base_doc()
        doc["service"]["events_per_sec"] = 0.0
        assert any("events_per_sec" in e for e in validate_bench_schema(doc))


def valid_service_slo_section():
    block = {
        "count": 3, "sum": 0.03, "min": 0.001, "max": 0.02,
        "p50": 0.005, "p95": 0.018, "p99": 0.02,
    }
    return {
        "epochs_closed": 3,
        "shards_run": 6,
        "ingest": dict(block),
        "epoch": dict(block),
        "shard": dict(block),
        "queue_depth": dict(block),
        "batch_events": dict(block),
    }


class TestValidateServiceSloSection:
    def base_doc(self):
        doc = run_scaling_bench(**TINY)
        doc["service"] = valid_service_section()
        doc["service_slo"] = valid_service_slo_section()
        return doc

    def test_valid_section_accepted(self):
        assert validate_bench_schema(self.base_doc()) == []

    def test_real_telemetry_summary_validates(self):
        # The validator must accept what the live plane actually emits.
        from repro.service import ServiceTelemetry

        doc = self.base_doc()
        doc["service_slo"] = ServiceTelemetry().slo_summary()  # degenerate run
        assert validate_bench_schema(doc) == []

    def test_non_object_rejected(self):
        doc = self.base_doc()
        doc["service_slo"] = []
        assert any("not an object" in e for e in validate_bench_schema(doc))

    def test_negative_counter_flagged(self):
        doc = self.base_doc()
        doc["service_slo"]["epochs_closed"] = -1
        assert any("epochs_closed" in e for e in validate_bench_schema(doc))

    def test_missing_block_flagged(self):
        doc = self.base_doc()
        del doc["service_slo"]["queue_depth"]
        assert any("queue_depth" in e for e in validate_bench_schema(doc))

    def test_missing_quantile_flagged(self):
        doc = self.base_doc()
        del doc["service_slo"]["shard"]["p99"]
        assert any("shard.p99" in e for e in validate_bench_schema(doc))

    def test_unordered_quantiles_flagged(self):
        doc = self.base_doc()
        doc["service_slo"]["epoch"]["p95"] = 0.5  # above p99 and max
        assert any("ordered" in e for e in validate_bench_schema(doc))

    def test_empty_blocks_skip_ordering_check(self):
        doc = self.base_doc()
        zero = {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        doc["service_slo"]["ingest"] = zero
        assert validate_bench_schema(doc) == []


def valid_analysis_section():
    return {
        "files_analyzed": 115,
        "findings_total": 1,
        "findings_by_rule": {"RIT013": 1},
        "cold_seconds": 0.8,
        "warm_cache_seconds": 0.2,
        "warm_files_parsed": 0,
    }


class TestValidateAnalysisSection:
    def base_doc(self):
        doc = run_scaling_bench(**TINY)
        doc["analysis"] = valid_analysis_section()
        return doc

    def test_valid_section_accepted(self):
        assert validate_bench_schema(self.base_doc()) == []

    def test_warm_reparse_flagged(self):
        # The cache contract: a warm run over an unchanged tree parses
        # nothing, and the committed bench doc proves it.
        doc = self.base_doc()
        doc["analysis"]["warm_files_parsed"] = 3
        assert any(
            "warm_files_parsed" in e for e in validate_bench_schema(doc)
        )

    def test_rule_counts_must_sum_to_total(self):
        doc = self.base_doc()
        doc["analysis"]["findings_total"] = 7
        assert any("sum" in e for e in validate_bench_schema(doc))

    def test_non_rit_rule_key_flagged(self):
        doc = self.base_doc()
        doc["analysis"]["findings_by_rule"] = {"E501": 1}
        assert any("not a RIT rule id" in e for e in validate_bench_schema(doc))

    def test_negative_timing_flagged(self):
        doc = self.base_doc()
        doc["analysis"]["warm_cache_seconds"] = -1.0
        assert any(
            "warm_cache_seconds" in e for e in validate_bench_schema(doc)
        )


CLEAN_SHA = "a" * 64
ATTACKED_SHA = "b" * 64


def valid_arena_section():
    """A hand-built minimal arena section (the live one is exercised in
    ``tests/arena/test_harness.py``; this pins the validator itself)."""

    def run_doc(sha):
        return {
            "epochs": 19,
            "completed_epochs": 12,
            "stream_sha256": sha,
            "tasks_allocated": 15,
            "total_payment": 120.5,
            "auction_payment": 90.25,
            "platform_utility": 29.5,
            "completed": True,
        }

    def entry(accounting, budget_cents=None):
        return {
            "accounting": accounting,
            "clean": run_doc(CLEAN_SHA),
            "attacked": run_doc(ATTACKED_SHA),
            "budget": {
                "checked": budget_cents is not None,
                "consistent": True,
                "budget_cents": budget_cents,
            },
            "sybil_gain": 0.0,
        }

    return {
        "config": {
            "seed": 7,
            "users": 220,
            "types": 3,
            "tasks_per_type": 5,
            "epoch_max_events": 24,
            "attack": "sybil",
            "attack_epoch": 3,
            "attack_seed": 115,
        },
        "stream": {
            "clean_sha256": CLEAN_SHA,
            "attacked_sha256": ATTACKED_SHA,
            "clean_events": 439,
            "attacked_events": 463,
            "schedule": {"kind": "sybil", "victim": 4},
        },
        "mechanisms": {
            "rit": entry("cumulative"),
            "omg": entry("incremental"),
            "glt": entry("cumulative", budget_cents=100_000),
            "lv-moscibroda": entry("cumulative"),
        },
        "sybil_gains": {
            "rit": -0.9,
            "omg": 0.0,
            "glt": 0.0,
            "lv-moscibroda": 0.0,
        },
        "rit_sybil_gain_minimal": True,
        "determinism": {
            "runs": 2,
            "bit_identical": True,
            "canonical_sha256": "c" * 64,
        },
    }


class TestValidateArenaSection:
    def base_doc(self):
        doc = run_scaling_bench(**TINY)
        doc["arena"] = valid_arena_section()
        return doc

    def test_valid_section_accepted(self):
        assert validate_bench_schema(self.base_doc()) == []

    def test_docs_without_arena_section_stay_valid(self):
        assert validate_bench_schema(run_scaling_bench(**TINY)) == []

    def test_non_object_section_flagged(self):
        doc = self.base_doc()
        doc["arena"] = []
        assert any(
            "arena is not an object" in e for e in validate_bench_schema(doc)
        )

    def test_roster_must_be_at_least_four_including_rit(self):
        doc = self.base_doc()
        del doc["arena"]["mechanisms"]["rit"]
        errors = validate_bench_schema(doc)
        assert any("must include 'rit'" in e for e in errors)
        assert any("at least 4" in e for e in errors)

    def test_unknown_mechanism_flagged(self):
        doc = self.base_doc()
        doc["arena"]["mechanisms"]["vcg"] = doc["arena"]["mechanisms"]["omg"]
        assert any(
            "unknown mechanism" in e for e in validate_bench_schema(doc)
        )

    def test_fingerprint_divergence_flagged(self):
        # A mechanism recording different stream bytes than the match
        # reference broke the identical-injection guarantee.
        doc = self.base_doc()
        doc["arena"]["mechanisms"]["omg"]["attacked"]["stream_sha256"] = (
            "0" * 64
        )
        assert any(
            "diverges from the match reference" in e
            for e in validate_bench_schema(doc)
        )

    def test_checked_budget_must_be_consistent(self):
        doc = self.base_doc()
        doc["arena"]["mechanisms"]["glt"]["budget"]["consistent"] = False
        assert any(
            "budget.consistent" in e for e in validate_bench_schema(doc)
        )

    def test_unchecked_budget_is_exempt(self):
        doc = self.base_doc()
        doc["arena"]["mechanisms"]["rit"]["budget"]["consistent"] = False
        assert validate_bench_schema(doc) == []

    def test_non_deterministic_scorecard_flagged(self):
        doc = self.base_doc()
        doc["arena"]["determinism"]["bit_identical"] = False
        assert any(
            "bit_identical" in e for e in validate_bench_schema(doc)
        )

    def test_single_run_determinism_flagged(self):
        doc = self.base_doc()
        doc["arena"]["determinism"]["runs"] = 1
        assert any(">= 2" in e for e in validate_bench_schema(doc))

    def test_rit_losing_on_sybil_gain_flagged(self):
        doc = self.base_doc()
        doc["arena"]["rit_sybil_gain_minimal"] = False
        assert any(
            "rit_sybil_gain_minimal" in e for e in validate_bench_schema(doc)
        )

    def test_bad_attack_kind_flagged(self):
        doc = self.base_doc()
        doc["arena"]["config"]["attack"] = "ddos"
        assert any(
            "sybil/collusion/churn" in e for e in validate_bench_schema(doc)
        )

    def test_bool_event_count_flagged(self):
        doc = self.base_doc()
        doc["arena"]["stream"]["clean_events"] = True
        assert any(
            "clean_events" in e for e in validate_bench_schema(doc)
        )


class TestCommittedBaseline:
    def test_committed_bench_json_is_valid(self):
        assert COMMITTED_BENCH.exists(), "BENCH_RIT.json must be committed"
        doc = json.loads(COMMITTED_BENCH.read_text())
        assert validate_bench_schema(doc) == []
        # The acceptance bar this PR shipped against: >= 2x vs pre-engine.
        assert doc["speedup_vs_pre_pr"] >= 2.0
        assert doc["config"]["users"] == 2000
        assert doc["config"]["scenario_seed"] == 2

    def test_committed_bench_has_analysis_section(self):
        doc = json.loads(COMMITTED_BENCH.read_text())
        analysis = doc["analysis"]
        assert analysis["files_analyzed"] > 100
        assert analysis["warm_files_parsed"] == 0

    def test_committed_bench_has_arena_section(self):
        # The committed head-to-head record: full roster, bit-identical
        # rerun, RIT conceding nothing to the sybil schedule.
        doc = json.loads(COMMITTED_BENCH.read_text())
        arena = doc["arena"]
        assert len(arena["mechanisms"]) >= 4
        assert arena["determinism"]["bit_identical"] is True
        assert arena["rit_sybil_gain_minimal"] is True
        assert arena["sybil_gains"]["rit"] == 0.0
        assert arena["mechanisms"]["glt"]["budget"]["consistent"] is True


class TestCLI:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--users", "80",
                "--types", "2",
                "--tasks-per-type", "5",
                "--reps", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_bench_schema(doc) == []
        stdout = capsys.readouterr().out
        assert "speedup sorted vs reference" in stdout
        assert str(out) in stdout

    def test_bench_engine_flag_skips_the_rest(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--users", "80",
                "--types", "2",
                "--tasks-per-type", "5",
                "--reps", "2",
                "--engine", "columnar",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_bench_schema(doc) == []
        assert doc["engines"]["sorted"] == {"skipped": True}
        assert doc["engines"]["reference"] == {"skipped": True}
        assert doc["engines"]["columnar"]["store_bytes"] > 0
        assert "skipped" in capsys.readouterr().out

    def test_bench_smoke_gates_on_schema(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = main(["bench", "--smoke", "--out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_bench_schema(doc) == []
        assert doc["engines"]["reference"] == {"skipped": True}
        assert "bench smoke OK" in capsys.readouterr().out


def test_write_bench_round_trips(tmp_path):
    doc = run_scaling_bench(**TINY)
    path = tmp_path / "b.json"
    write_bench(doc, str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(doc)
    )
