# rit: module=repro.core.fixture_rng_good
"""RIT001 fixture (clean): randomness threaded as explicit generators."""

import numpy as np


def sample_winners(candidates, rng: np.random.Generator):
    gen = np.random.default_rng(1234)  # explicit seed: reproducible
    children = np.random.SeedSequence(7).spawn(3)
    rng.shuffle(candidates)  # Generator method, not module-level state
    return gen, children, candidates
