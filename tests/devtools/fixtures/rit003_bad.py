# rit: module=repro.core.fixture_frozen_bad
"""RIT003 fixture: in-place mutation of frozen core value objects."""

from repro.core.outcome import MechanismOutcome
from repro.core.types import Ask, Job


def tamper(job: Job, outcome: MechanismOutcome):
    job.counts = (1, 2, 3)  # expect: RIT003
    outcome.completed = False  # expect: RIT003
    ask = Ask(0, 1, 2.0)
    ask.value = 99.0  # expect: RIT003
    voided = outcome.void()
    voided.elapsed_total = 0.0  # expect: RIT003
    del job.counts  # expect: RIT003
    return ask, voided
