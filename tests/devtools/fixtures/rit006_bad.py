# rit: module=repro.attacks.fixture_except_bad
"""RIT006 fixture: failures papered over in attack evaluation code."""


def evaluate(mechanism, job, asks, tree, rng):
    try:
        return mechanism.run(job, asks, tree, rng)
    except:  # expect: RIT006
        return None


def probe(mechanism, job, asks, tree, rng):
    try:
        mechanism.run(job, asks, tree, rng)
    except ValueError:  # expect: RIT006
        pass
    try:
        mechanism.run(job, asks, tree, rng)
    except Exception:  # expect: RIT006
        ...
