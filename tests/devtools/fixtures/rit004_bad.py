# rit: module=repro.fixture_exports_bad
"""RIT004 fixture: __all__ names a symbol the module never binds."""

__all__ = ["real_function", "ghost_symbol"]  # expect: RIT004


def real_function():
    return 1
