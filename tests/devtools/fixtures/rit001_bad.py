# rit: module=repro.core.fixture_rng_bad
"""RIT001 fixture: every way mechanism code can smuggle in hidden RNG state.

Lint fixture only — never imported or executed.  The ``# expect:`` markers
are read by tests/devtools/test_rules_fixtures.py and compared against the
linter's (file, line, rule) output.
"""

import random  # expect: RIT001

import numpy as np
from numpy.random import default_rng


def sample_winners(candidates):
    gen = np.random.default_rng()  # expect: RIT001
    other = default_rng()  # expect: RIT001
    np.random.seed(1234)  # expect: RIT001
    np.random.shuffle(candidates)  # expect: RIT001
    pick = random.choice(candidates)  # expect: RIT001
    return gen, other, pick
