# rit: module=repro.service.fixture_blocking_bad
"""RIT008 fixture: blocking calls on the service event loop."""

import time
from pathlib import Path
from time import sleep


async def drain(queue, ledger_path):
    time.sleep(0.1)  # expect: RIT008
    sleep(0.1)  # expect: RIT008
    handle = open(ledger_path)  # expect: RIT008
    text = Path(ledger_path).read_text()  # expect: RIT008
    Path(ledger_path).write_text(text)  # expect: RIT008
    return handle


class Frontend:
    async def close(self, path):
        payload = Path(path).read_bytes()  # expect: RIT008
        Path(path).write_bytes(payload)  # expect: RIT008
