# rit: module=repro.core.fixture_hidden_good
"""RIT005 fixture (clean): monotonic timing + explicit configuration."""

import time


def allocate(job, scale: str):
    started = time.perf_counter()  # monotonic duration: diagnostics only
    elapsed = time.perf_counter() - started
    return scale, elapsed
