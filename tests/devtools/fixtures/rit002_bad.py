# rit: module=repro.core.fixture_floateq_bad
"""RIT002 fixture: raw float equality on monetary quantities."""


def audit(outcome, honest, deviant_utility, asks, uid):
    if outcome.payments[uid] == honest.payments[uid]:  # expect: RIT002
        return True
    exploded = deviant_utility != 0.0  # expect: RIT002
    same_ask = asks[uid].value == 3.0  # expect: RIT002
    gap_closed = honest.total_payment - outcome.total_payment == 0  # expect: RIT002
    return exploded, same_ask, gap_closed
