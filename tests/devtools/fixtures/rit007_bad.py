# rit: module=repro.core.rit
"""RIT007 fixture: raw diagnostics inside an instrumented module.

``time.perf_counter``/``time.monotonic`` are fine for RIT005 (monotonic,
not a hidden input) but banned here: instrumented modules read time only
through the tracer's injected clock.  ``print`` escapes the event sink.
"""

import time


def run_round(tracer, rounds):
    started = time.perf_counter()  # expect: RIT007
    print("round", rounds)  # expect: RIT007
    elapsed = time.monotonic() - started  # expect: RIT007
    tracer.count("cra_rounds")
    return elapsed
