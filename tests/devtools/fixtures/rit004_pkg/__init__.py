# rit: module=repro.fixture_pkg
"""RIT004 fixture: package __init__ leaking an unlisted re-export."""

from repro.core.types import Ask, Job

__all__ = ["Job"]  # Ask is unlisted -> accidental API  # expect: RIT004
