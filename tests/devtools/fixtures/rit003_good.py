# rit: module=repro.core.fixture_frozen_good
"""RIT003 fixture (clean): copies derived with replace / helpers."""

from dataclasses import replace

from repro.core.outcome import MechanismOutcome
from repro.core.types import Ask, Job


def amend(job: Job, outcome: MechanismOutcome):
    bigger = replace(job, counts=(1, 2, 3))
    ask = Ask(0, 1, 2.0).with_value(99.0)
    final = outcome.finalize(elapsed_total=0.5)
    mutable_stats = {"count": 0}
    mutable_stats["count"] = 1  # plain dicts stay mutable
    return bigger, ask, final
