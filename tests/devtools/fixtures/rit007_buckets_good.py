# rit: module=repro.service.telemetry
"""RIT007 fixture: histogram boundaries from the shared registry.

Boundaries come from ``repro.obs.metrics`` — either indirectly via
``new_histogram`` (which looks up the metric's registered family) or
directly via ``bucket_boundaries``.  Non-bucket numeric literals are
untouched by the rule.
"""

from repro.obs.metrics import bucket_boundaries, new_histogram

PERCENTILES = (0.5, 0.95, 0.99)


def shard_histogram():
    return new_histogram("shard_run_seconds")


def depth_grid():
    return bucket_boundaries("depth")
