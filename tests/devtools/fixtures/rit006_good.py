# rit: module=repro.attacks.fixture_except_good
"""RIT006 fixture (clean): exceptions surfaced, translated or recorded."""

from repro.core.exceptions import AttackError


def evaluate(mechanism, job, asks, tree, rng):
    try:
        return mechanism.run(job, asks, tree, rng)
    except KeyError as exc:
        raise AttackError(f"scenario references unknown id: {exc}") from exc


def probe(mechanism, job, asks, tree, rng, failures):
    try:
        return mechanism.run(job, asks, tree, rng)
    except ValueError as exc:
        failures.append(exc)  # recorded, not swallowed
        return None
