# rit: module=repro.core.fixture_floateq_good
"""RIT002 fixture (clean): tolerant comparison + non-monetary equality."""

from repro.core.numeric import close, is_zero, payments_close


def audit(outcome, honest, deviant_utility, asks, uid, tau):
    matched = payments_close(outcome.payments, honest.payments)
    exploded = not is_zero(deviant_utility)
    same_ask = close(asks[uid].value, 3.0)
    same_type = asks[uid].task_type == tau  # ints: exact equality is fine
    return matched, exploded, same_ask, same_type
