# rit: module=repro.core.fixture_hidden_bad
"""RIT005 fixture: wall-clock and environment reads in mechanism core."""

import os
import time
from datetime import datetime
from os import getenv


def allocate(job):
    started = time.time()  # expect: RIT005
    stamp = datetime.now()  # expect: RIT005
    scale = os.environ["RIT_SCALE"]  # expect: RIT005
    fallback = os.environ.get("RIT_MODE", "fast")  # expect: RIT005
    debug = getenv("RIT_DEBUG")  # expect: RIT005
    return started, stamp, scale, fallback, debug
