# rit: module=repro.fixture_pkg_no_all  # expect: RIT004  (missing __all__)
"""RIT004 fixture: package __init__ with no __all__ at all."""

from repro.core.types import Job


def helper():
    return Job((1,))
