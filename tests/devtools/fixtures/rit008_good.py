# rit: module=repro.service.fixture_blocking_good
"""RIT008 fixture (clean): awaited sleeps + executor-dispatched I/O."""

import asyncio
import functools


def _append_line(path, line):
    # Sync I/O is fine here: this runs on the worker pool, not the loop.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)


async def drain(queue, ledger_path):
    await asyncio.sleep(0)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(
        None, functools.partial(_append_line, ledger_path, "epoch\n")
    )


def flush(path, lines):
    # Plain sync function: open() on a non-loop thread is not a finding.
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
