# rit: module=repro.core.rit
"""RIT007 fixture: diagnostics routed through the tracer as required."""


def run_round(tracer, rounds):
    started = tracer.clock()
    with tracer.span("round", round_index=rounds):
        tracer.count("cra_rounds")
    return tracer.clock() - started
