# rit: module=repro.fixture_exports_good
"""RIT004 fixture (clean): __all__ matches the bound symbols exactly."""

__all__ = ["CONSTANT", "real_function"]

CONSTANT = 7


def real_function():
    return CONSTANT


def _private_helper():
    return 0  # private: not required in __all__
