# rit: module=repro.service.telemetry
"""RIT007 fixture: ad-hoc histogram buckets in an instrumented module.

The telemetry determinism contract requires every histogram to use the
fixed boundaries registered in ``repro.obs.metrics``.  Minting a grid
locally (``np.logspace``) or hard-coding a literal list under a
``*bucket*``/``*boundar*`` name forks the exposition format.
"""

import numpy as np

LATENCY_BUCKETS = [0.001, 0.01, 0.1, 1.0]  # expect: RIT007

DEPTH_BOUNDARIES = (1, 2, 4, 8, 16)  # expect: RIT007


def shard_grid():
    boundaries = np.logspace(-6, 2, num=32)  # expect: RIT007
    return boundaries


def queue_grid():
    return np.geomspace(1.0, 4096.0, num=13)  # expect: RIT007
