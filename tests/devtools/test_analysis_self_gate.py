"""The analyzer gates its own repository: live ``src/repro`` must match
the committed baseline exactly.

Like the linter's self-gate, this is the tripwire the subsystem exists
for: a PR that introduces a reachable blocking call, RNG taint, unowned
shared state, a cross-module money ``==`` or an uninstrumented hot-path
function fails here — and a PR that *fixes* accepted debt without
refreshing the baseline fails too (the stale check), so the committed
file can only shrink honestly.
"""

from pathlib import Path

from repro.devtools.analysis import Baseline, analyze_paths
from repro.devtools.analysis.baseline import BASELINE_FILENAME

REPO = Path(__file__).resolve().parent.parent.parent


def _live_result():
    return analyze_paths([REPO / "src" / "repro"], root=REPO, cache_path=None)


def test_live_tree_matches_committed_baseline_exactly():
    result = _live_result()
    assert result.files_analyzed > 100  # the walk really covered the tree
    assert result.parse_errors == 0
    baseline = Baseline.load(REPO / BASELINE_FILENAME)
    diff = baseline.diff(result.findings, REPO)
    problems = [f"new: {f.format()}" for f in diff.new] + [
        f"stale: {e['rule']} {e['path']} x{e['stale_count']}" for e in diff.stale
    ]
    assert diff.clean, "rit analyze drifted from the baseline:\n" + "\n".join(
        problems
    )


def test_committed_baseline_is_minimal():
    """Accepted debt must stay at zero: fix findings or justify a noqa
    at the site instead of parking them in the baseline."""
    baseline = Baseline.load(REPO / BASELINE_FILENAME)
    assert baseline.entries == {}


def test_call_graph_is_nontrivial():
    """Linking really resolves cross-module edges on the live tree."""
    result = _live_result()
    program = result.program
    edges = sum(len(program.edges(q)) for q in program.functions)
    assert edges > 500
    # A known cross-module chain: the service serve loop reaches the
    # shard-worker dispatch in another module.
    reached = program.reachable(["repro.service.service.MechanismService.serve"])
    assert "repro.service.workers.run_epoch" in reached
