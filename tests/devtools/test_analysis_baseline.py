"""Baseline workflow and ``rit analyze`` CLI exit codes.

Covers the brownfield-adoption contract: known findings pass, new ones
fail, ``--ci`` additionally fails on stale entries, ``--baseline-update``
regenerates, fingerprints survive line shifts, and the SARIF report is
structurally valid.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as rit_main
from repro.devtools.analysis import Baseline, analyze_paths
from repro.devtools.analysis.baseline import fingerprint
from repro.devtools.analysis.cli import main as analyze_main

BLOCKING_PROJECT = {
    "svc.py": (
        "# rit: module=repro.service.blsvc\n"
        "from repro.blutil import flush\n"
        "async def serve():\n"
        "    flush()\n"
    ),
    "util.py": (
        "# rit: module=repro.blutil\n"
        "import time\n"
        "def flush():\n"
        "    time.sleep(0.01)\n"
    ),
}


@pytest.fixture
def project(tmp_path, monkeypatch):
    for name, source in BLOCKING_PROJECT.items():
        (tmp_path / name).write_text(source)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _analyze(root: Path):
    return analyze_paths([root], root=root, cache_path=None)


class TestFingerprints:
    def test_stable_across_line_shifts(self, project):
        before = _analyze(project).findings
        source = (project / "util.py").read_text()
        (project / "util.py").write_text(
            source.replace("import time\n", '"""Docstring pushes lines."""\nimport time\n')
        )
        after = _analyze(project).findings
        assert [f.line for f in before] != [f.line for f in after]
        assert [fingerprint(f, project) for f in before] == [
            fingerprint(f, project) for f in after
        ]

    def test_diff_splits_new_known_stale(self, project):
        findings = _analyze(project).findings
        baseline = Baseline.from_findings(findings, project)
        diff = baseline.diff(findings, project)
        assert diff.clean and diff.known == len(findings) == 1
        # Nothing found any more -> the entry is stale.
        empty = baseline.diff([], project)
        assert not empty.new and len(empty.stale) == 1
        # Found but not baselined -> new.
        fresh = Baseline().diff(findings, project)
        assert len(fresh.new) == 1 and not fresh.stale


class TestCliExitCodes:
    def test_update_then_plain_then_strict(self, project, capsys):
        assert analyze_main(["--baseline-update", "--no-cache", "."]) == 0
        assert analyze_main(["--no-cache", "."]) == 0
        assert analyze_main(["--ci", "--no-cache", "."]) == 0
        capsys.readouterr()

    def test_new_finding_fails(self, project, capsys):
        assert analyze_main(["--baseline-update", "--no-cache", "."]) == 0
        (project / "extra.py").write_text(
            "# rit: module=repro.blextra\n"
            "import time\n"
            "def stall():\n"
            "    time.sleep(1)\n"
        )
        (project / "svc.py").write_text(
            BLOCKING_PROJECT["svc.py"].replace(
                "    flush()\n",
                "    flush()\n    from repro.blextra import stall\n    stall()\n",
            )
        )
        assert analyze_main(["--no-cache", "."]) == 1
        out = capsys.readouterr().out
        assert "[new]" in out and "stall" in out

    def test_stale_entry_fails_only_under_ci(self, project, capsys):
        assert analyze_main(["--baseline-update", "--no-cache", "."]) == 0
        (project / "util.py").write_text(
            "# rit: module=repro.blutil\ndef flush():\n    return None\n"
        )
        assert analyze_main(["--no-cache", "."]) == 0
        assert analyze_main(["--ci", "--no-cache", "."]) == 1
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_gates_on_everything(self, project, capsys):
        assert analyze_main(["--no-baseline", "--no-cache", "."]) == 1
        capsys.readouterr()

    def test_missing_path_exits_two(self, project, capsys):
        assert analyze_main(["definitely/not/here"]) == 2
        capsys.readouterr()

    def test_list_rules(self, project, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RIT009", "RIT010", "RIT011", "RIT012", "RIT013"):
            assert rule_id in out

    def test_rit_cli_analyze_subcommand_matches(self, project, capsys):
        assert rit_main(["analyze", "--no-baseline", "--no-cache", "."]) == 1
        assert "RIT009" in capsys.readouterr().out

    def test_json_format(self, project, capsys):
        assert analyze_main(
            ["--no-baseline", "--no-cache", "--format", "json", "."]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["by_rule"] == {"RIT009": 1}
        assert doc["files_analyzed"] == 2


class TestBenchMerge:
    def test_bench_flag_writes_analysis_section(self, project, capsys):
        out = project / "bench.json"
        assert analyze_main(["--bench", "--bench-out", str(out), "."]) == 0
        stdout = capsys.readouterr().out
        assert "analysis section merged" in stdout
        section = json.loads(out.read_text())["analysis"]
        assert section["files_analyzed"] == 2
        assert section["findings_by_rule"] == {"RIT009": 1}
        # The bench probe's second pass ran fully warm.
        assert section["warm_files_parsed"] == 0

    def test_bench_merge_preserves_existing_doc(self, project, capsys):
        out = project / "bench.json"
        out.write_text('{"benchmark": "full_rit_run"}\n')
        assert analyze_main(["--bench", "--bench-out", str(out), "."]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "full_rit_run"
        assert "analysis" in doc


class TestSarif:
    def test_sarif_report_structure(self, project, capsys):
        sarif_path = project / "out.sarif"
        analyze_main(
            ["--no-baseline", "--no-cache", "--sarif", str(sarif_path), "."]
        )
        capsys.readouterr()
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
            "RIT009",
            "RIT010",
            "RIT011",
            "RIT012",
            "RIT013",
        }
        (result,) = run["results"]
        assert result["ruleId"] == "RIT009"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "util.py"
        assert location["region"]["startLine"] == 4
