"""Unit tests for the extraction and linking layers of ``rit analyze``.

These drive :func:`summary_from_source` + :class:`Program` directly on
in-memory sources, pinning the resolution semantics everything else rests
on: re-export chains, ``self.``-method calls, the unique-method fallback,
money-return inference, tracer closure, and summary round-tripping
through the cache's dict form.
"""

from repro.devtools.analysis.program import Program
from repro.devtools.analysis.summary import ModuleSummary, summary_from_source


def _program(*module_sources):
    return Program(
        summary_from_source(module, source) for module, source in module_sources
    )


class TestResolution:
    def test_reexport_chain_resolves_through_package_init(self):
        program = _program(
            ("repro.core", "from repro.core.rit import RIT\n"),
            (
                "repro.core.rit",
                "class RIT:\n"
                "    def __init__(self):\n"
                "        self.h = 0.8\n",
            ),
            (
                "repro.app",
                "from repro.core import RIT\n"
                "def build():\n"
                "    return RIT()\n",
            ),
        )
        edges = program.edges("repro.app.build")
        assert [callee for callee, _ in edges] == ["repro.core.rit.RIT.__init__"]

    def test_self_method_call_resolves_within_class(self):
        program = _program(
            (
                "repro.m",
                "class Pipeline:\n"
                "    def outer(self):\n"
                "        return self.inner()\n"
                "    def inner(self):\n"
                "        return 1\n",
            )
        )
        edges = program.edges("repro.m.Pipeline.outer")
        assert [callee for callee, _ in edges] == ["repro.m.Pipeline.inner"]

    def test_unique_method_fallback_resolves_distinctive_names(self):
        program = _program(
            (
                "repro.mech",
                "class RIT:\n"
                "    def run_type_shard(self, shard):\n"
                "        return shard\n",
            ),
            (
                "repro.caller",
                "def dispatch(mechanism, shard):\n"
                "    return mechanism.run_type_shard(shard)\n",
            ),
        )
        edges = program.edges("repro.caller.dispatch")
        assert [callee for callee, _ in edges] == ["repro.mech.RIT.run_type_shard"]

    def test_generic_method_names_produce_no_edges(self):
        program = _program(
            (
                "repro.a",
                "class Box:\n"
                "    def get(self):\n"
                "        return 1\n",
            ),
            (
                "repro.b",
                "def f(box):\n"
                "    return box.get()\n",
            ),
        )
        assert program.edges("repro.b.f") == []

    def test_local_name_shadows_module_def(self):
        program = _program(
            (
                "repro.shadow",
                "def helper():\n"
                "    return 1\n"
                "def f(helper):\n"
                "    return helper()\n",
            )
        )
        assert program.edges("repro.shadow.f") == []


class TestReachability:
    def test_chain_reconstruction(self):
        program = _program(
            (
                "repro.chainmod",
                "def a():\n"
                "    return b()\n"
                "def b():\n"
                "    return c()\n"
                "def c():\n"
                "    return 1\n",
            )
        )
        reached = program.reachable(["repro.chainmod.a"])
        assert Program.chain(reached, "repro.chainmod.c") == [
            "repro.chainmod.a",
            "repro.chainmod.b",
            "repro.chainmod.c",
        ]
        assert reached["repro.chainmod.c"].depth == 2

    def test_recursion_terminates(self):
        program = _program(
            (
                "repro.rec",
                "def a():\n"
                "    return b()\n"
                "def b():\n"
                "    return a()\n",
            )
        )
        reached = program.reachable(["repro.rec.a"])
        assert set(reached) == {"repro.rec.a", "repro.rec.b"}


class TestInference:
    def test_money_return_inferred_from_local_name(self):
        program = _program(
            (
                "repro.q",
                "def settle(asks):\n"
                "    payment = min(asks)\n"
                "    return payment\n",
            )
        )
        assert program.functions["repro.q.settle"].returns_money

    def test_count_return_is_not_money(self):
        program = _program(
            (
                "repro.q",
                "def headcount(asks):\n"
                "    total = len(asks)\n"
                "    return total\n",
            )
        )
        assert not program.functions["repro.q.headcount"].returns_money

    def test_tracer_closure_is_transitive(self):
        program = _program(
            (
                "repro.t",
                "def outer():\n"
                "    return inner()\n"
                "def inner(tracer=None):\n"
                "    with tracer.span('x'):\n"
                "        return 1\n"
                "def bare():\n"
                "    return 2\n",
            )
        )
        closure = program.tracer_closure()
        assert "repro.t.inner" in closure
        assert "repro.t.outer" in closure
        assert "repro.t.bare" not in closure


def test_summary_round_trips_through_dict():
    summary = summary_from_source(
        "repro.rt",
        "import time\n"
        "CACHE = {}\n"
        "def f(x):  # rit: noqa[RIT009]\n"
        "    time.sleep(x)\n"
        "    CACHE[x] = x\n",
    )
    restored = ModuleSummary.from_dict(summary.to_dict())
    assert restored == summary
    assert restored.is_suppressed(3, "RIT009")
    assert not restored.is_suppressed(4, "RIT009")
