"""``rit lint --changed``: lint only what differs from a git base ref.

Builds a throwaway git repository per test so the selection logic
(committed + working-tree + untracked, intersected with lintable
discovery) is exercised against real ``git diff`` output rather than
mocks.  Skipped when git is unavailable in the environment.
"""

import shutil
import subprocess

import pytest

from repro.devtools.discovery import GitError, git_changed_files
from repro.devtools.lint.cli import main as lint_main

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not installed"
)

CLEAN = "VALUE = 1\n"
DIRTY = (
    "# rit: module=repro.core.changed_probe\n"
    "import numpy as np\n"
    "a = np.random.default_rng()\n"
)


def _git(repo, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    _git(tmp_path, "init", "-q", "-b", "main")
    (tmp_path / "base.py").write_text(CLEAN)
    (tmp_path / "other.py").write_text(CLEAN)
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestGitChangedFiles:
    def test_clean_tree_reports_nothing(self, repo):
        assert git_changed_files("main", cwd=repo) == []

    def test_working_tree_edit_is_reported(self, repo):
        (repo / "base.py").write_text(CLEAN + "OTHER = 2\n")
        changed = git_changed_files("main", cwd=repo)
        assert [p.name for p in changed] == ["base.py"]

    def test_untracked_file_is_reported(self, repo):
        (repo / "fresh.py").write_text(CLEAN)
        changed = git_changed_files("main", cwd=repo)
        assert [p.name for p in changed] == ["fresh.py"]

    def test_committed_change_on_branch_is_reported(self, repo):
        _git(repo, "checkout", "-q", "-b", "feature")
        (repo / "other.py").write_text(CLEAN + "MORE = 3\n")
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "edit")
        changed = git_changed_files("main", cwd=repo)
        assert [p.name for p in changed] == ["other.py"]

    def test_deleted_file_is_not_reported(self, repo):
        (repo / "other.py").unlink()
        assert git_changed_files("main", cwd=repo) == []

    def test_bad_ref_raises(self, repo):
        with pytest.raises(GitError):
            git_changed_files("no-such-ref", cwd=repo)


class TestLintChanged:
    def test_no_changes_exits_zero(self, repo, capsys):
        assert lint_main(["--changed", str(repo)]) == 0
        assert "0 file(s) changed" in capsys.readouterr().out

    def test_changed_clean_file_exits_zero(self, repo, capsys):
        (repo / "base.py").write_text(CLEAN + "OTHER = 2\n")
        assert lint_main(["--changed", str(repo)]) == 0
        assert "1 file(s) checked" in capsys.readouterr().out

    def test_changed_dirty_file_exits_one(self, repo, capsys):
        (repo / "base.py").write_text(DIRTY)
        assert lint_main(["--changed", str(repo)]) == 1
        out = capsys.readouterr().out
        assert "RIT001" in out

    def test_unchanged_dirty_file_is_not_linted(self, repo, capsys):
        # other.py is dirty but committed on the base ref: --changed must
        # skip it, a plain run must flag it.
        (repo / "other.py").write_text(DIRTY)
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "dirty on main")
        assert lint_main(["--changed", str(repo)]) == 0
        assert lint_main([str(repo)]) == 1
        capsys.readouterr()

    def test_base_ref_is_configurable(self, repo, capsys):
        _git(repo, "checkout", "-q", "-b", "feature")
        (repo / "base.py").write_text(DIRTY)
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "dirty on feature")
        assert lint_main(["--changed", "--base-ref", "feature", str(repo)]) == 0
        assert lint_main(["--changed", "--base-ref", "main", str(repo)]) == 1
        capsys.readouterr()

    def test_bad_base_ref_exits_two(self, repo, capsys):
        assert lint_main(["--changed", "--base-ref", "nope", str(repo)]) == 2
        assert "--changed failed" in capsys.readouterr().err
