"""Tests for the user population generators."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads.users import PAPER_USERS, UserDistribution, generate_population


class TestUserDistribution:
    def test_paper_profile(self):
        assert PAPER_USERS.num_types == 10
        assert PAPER_USERS.max_capacity == 20
        assert PAPER_USERS.max_cost == 10.0

    def test_sample_size_and_ids(self):
        pop = PAPER_USERS.sample(100, rng=0)
        assert len(pop) == 100
        assert pop.ids == list(range(100))

    def test_profiles_within_ranges(self):
        pop = PAPER_USERS.sample(500, rng=1)
        for user in pop:
            assert 0 <= user.task_type < 10
            assert 1 <= user.capacity <= 20
            assert 0.0 < user.cost <= 10.0

    def test_determinism(self):
        a = PAPER_USERS.sample(50, rng=42)
        b = PAPER_USERS.sample(50, rng=42)
        assert [u.cost for u in a] == [u.cost for u in b]

    def test_types_are_roughly_uniform(self):
        pop = PAPER_USERS.sample(5000, rng=2)
        counts = np.bincount([u.task_type for u in pop], minlength=10)
        assert counts.min() > 350  # expected 500 each

    def test_capacities_cover_full_range(self):
        pop = PAPER_USERS.sample(2000, rng=3)
        caps = {u.capacity for u in pop}
        assert 1 in caps and 20 in caps

    def test_zero_users(self):
        assert len(PAPER_USERS.sample(0, rng=0)) == 0

    def test_negative_users_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_USERS.sample(-1, rng=0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UserDistribution(num_types=0)
        with pytest.raises(ConfigurationError):
            UserDistribution(max_capacity=0)
        with pytest.raises(ConfigurationError):
            UserDistribution(max_cost=0.0)

    def test_custom_distribution(self):
        dist = UserDistribution(num_types=3, max_capacity=5, max_cost=2.0)
        pop = dist.sample(200, rng=4)
        assert all(u.task_type < 3 for u in pop)
        assert all(u.capacity <= 5 for u in pop)
        assert all(u.cost <= 2.0 for u in pop)

    def test_generate_population_wrapper(self):
        pop = generate_population(10, rng=0)
        assert len(pop) == 10
