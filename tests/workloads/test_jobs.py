"""Tests for the job generators."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads.jobs import random_job, uniform_job


class TestUniformJob:
    def test_paper_default(self):
        job = uniform_job()
        assert job.num_types == 10
        assert job.counts == (5000,) * 10

    def test_custom(self):
        job = uniform_job(3, 7)
        assert job.counts == (7, 7, 7)


class TestRandomJob:
    def test_fig9_ranges(self):
        job = random_job(10, 100, 500, rng=0)
        assert job.num_types == 10
        assert all(100 < c <= 500 for c in job.counts)

    def test_determinism(self):
        assert random_job(5, 10, 50, rng=9).counts == random_job(5, 10, 50, rng=9).counts

    def test_distribution_covers_range(self):
        seen = set()
        for seed in range(200):
            seen.update(random_job(4, 1, 4, rng=seed).counts)
        assert seen == {2, 3, 4}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_job(0, 1, 5)
        with pytest.raises(ConfigurationError):
            random_job(3, 5, 5)
        with pytest.raises(ConfigurationError):
            random_job(3, -1, 5)
