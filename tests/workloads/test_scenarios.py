"""Tests for the bundled scenarios."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.types import Job
from repro.tree.growth import required_supply
from repro.workloads.scenarios import (
    environmental_monitoring,
    paper_scenario,
    spectrum_sensing,
)
from repro.workloads.users import UserDistribution


class TestPaperScenario:
    def test_basic_shape(self):
        job = Job.uniform(4, 10)
        sc = paper_scenario(200, job, rng=0, distribution=UserDistribution(num_types=4))
        assert sc.num_users == 200
        assert len(sc.population) == 200
        assert sc.graph is not None
        assert sc.job is job

    def test_truthful_asks_cover_tree(self):
        job = Job.uniform(4, 10)
        sc = paper_scenario(150, job, rng=1, distribution=UserDistribution(num_types=4))
        asks = sc.truthful_asks()
        assert set(asks) == set(sc.tree.nodes())
        for uid, ask in asks.items():
            user = sc.population[uid]
            assert ask.value == user.cost
            assert ask.capacity == user.capacity

    def test_costs_mapping(self):
        job = Job.uniform(2, 5)
        sc = paper_scenario(50, job, rng=2, distribution=UserDistribution(num_types=2))
        costs = sc.costs()
        assert len(costs) == 50
        assert all(c > 0 for c in costs.values())

    def test_determinism(self):
        job = Job.uniform(2, 5)
        a = paper_scenario(80, job, rng=3, distribution=UserDistribution(num_types=2))
        b = paper_scenario(80, job, rng=3, distribution=UserDistribution(num_types=2))
        assert a.tree.to_parent_map() == b.tree.to_parent_map()
        assert a.costs() == b.costs()

    def test_supply_threshold_limits_tree(self):
        job = Job.uniform(3, 5)
        full = paper_scenario(
            400, job, rng=4, distribution=UserDistribution(num_types=3)
        )
        capped = paper_scenario(
            400, job, rng=4, distribution=UserDistribution(num_types=3),
            supply_threshold=True,
        )
        assert len(capped.tree) < len(full.tree)
        # the capped tree satisfies the Remark 6.1 rule for every type.
        supply = {tau: 0 for tau in job.types()}
        for node in capped.tree.nodes():
            user = capped.population[node]
            supply[user.task_type] += user.capacity
        for tau, req in required_supply(job).items():
            assert supply[tau] >= req

    def test_zero_users_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_scenario(0, Job([1]), rng=0)


class TestDomainScenarios:
    def test_spectrum_sensing(self):
        sc = spectrum_sensing(num_users=120, rng=0)
        assert sc.job.num_types == 2
        assert sc.name == "spectrum-sensing"
        assert all(u.capacity <= 5 for u in sc.population)

    def test_environmental_monitoring(self):
        sc = environmental_monitoring(num_users=150, rng=0)
        assert sc.job.num_types == 5
        assert sc.num_users == 150

    def test_healthcare(self):
        from repro.workloads.scenarios import healthcare

        sc = healthcare(num_users=120, rng=0)
        assert sc.name == "healthcare"
        assert sc.job.num_types == 4
        assert all(u.capacity <= 3 for u in sc.population)
