"""Tests for the geographic workload substrate."""

import math

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads.geo import (
    Region,
    generate_geo_population,
    generate_regions,
    job_from_regions,
)


class TestRegion:
    def test_distance(self):
        r = Region(center=(0.5, 0.5), radius=0.1, num_pois=10)
        assert r.distance_to(0.5, 0.5) == 0.0
        assert r.distance_to(0.5, 0.8) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Region(center=(0, 0), radius=0.0, num_pois=1)
        with pytest.raises(ConfigurationError):
            Region(center=(0, 0), radius=0.1, num_pois=-1)


class TestGenerateRegions:
    def test_count_and_bounds(self):
        regions = generate_regions(6, radius=0.1, rng=0)
        assert len(regions) == 6
        for r in regions:
            assert 0.1 <= r.center[0] <= 0.9
            assert 0.1 <= r.center[1] <= 0.9
            assert 20 <= r.num_pois <= 60

    def test_custom_poi_range(self):
        regions = generate_regions(10, pois_low=5, pois_high=5, rng=1)
        assert all(r.num_pois == 5 for r in regions)

    def test_determinism(self):
        a = generate_regions(4, rng=7)
        b = generate_regions(4, rng=7)
        assert [r.center for r in a] == [r.center for r in b]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_regions(0)
        with pytest.raises(ConfigurationError):
            generate_regions(2, radius=0.6)
        with pytest.raises(ConfigurationError):
            generate_regions(2, pois_low=10, pois_high=5)


class TestJobFromRegions:
    def test_counts_follow_pois(self):
        regions = [
            Region((0.2, 0.2), 0.1, 7),
            Region((0.8, 0.8), 0.1, 3),
        ]
        job = job_from_regions(regions)
        assert job.counts == (7, 3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            job_from_regions([])


class TestGeoPopulation:
    @pytest.fixture(scope="class")
    def setup(self):
        regions = generate_regions(4, rng=3)
        pop = generate_geo_population(regions, 300, rng=4)
        return regions, pop

    def test_size_and_types(self, setup):
        regions, pop = setup
        assert len(pop) == 300
        assert all(0 <= u.task_type < 4 for u in pop)

    def test_every_type_populated(self, setup):
        regions, pop = setup
        types = {u.task_type for u in pop}
        assert types == {0, 1, 2, 3}

    def test_capacity_and_cost_ranges(self, setup):
        regions, pop = setup
        for u in pop:
            assert 1 <= u.capacity <= 12
            assert u.cost > 0

    def test_distance_drives_profile(self):
        """Among users of one region, closer users have weakly higher
        capacity on average and lower travel cost."""
        regions = [Region((0.5, 0.5), 0.1, 10)]
        pop = generate_geo_population(
            regions, 500, travel_cost=10.0, rng=5
        )
        near = [u for u in pop if u.capacity >= 10]
        far = [u for u in pop if u.capacity <= 3]
        if near and far:
            mean = lambda us: sum(u.cost for u in us) / len(us)
            assert mean(near) < mean(far)

    def test_determinism(self):
        regions = generate_regions(3, rng=1)
        a = generate_geo_population(regions, 50, rng=2)
        b = generate_geo_population(regions, 50, rng=2)
        assert [u.cost for u in a] == [u.cost for u in b]

    def test_zero_users(self):
        regions = generate_regions(2, rng=0)
        assert len(generate_geo_population(regions, 0, rng=0)) == 0

    def test_validation(self):
        regions = generate_regions(2, rng=0)
        with pytest.raises(ConfigurationError):
            generate_geo_population([], 5)
        with pytest.raises(ConfigurationError):
            generate_geo_population(regions, -1)
        with pytest.raises(ConfigurationError):
            generate_geo_population(regions, 5, max_capacity=0)
        with pytest.raises(ConfigurationError):
            generate_geo_population(regions, 5, base_cost=0.0)
