"""Smoke tests: every shipped example must run clean and tell its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: example file -> snippets its output must contain.
EXPECTATIONS = {
    "quickstart.py": ["job completed: True", "top solicitors"],
    "spectrum_sensing.py": ["RIT", "k-th price auction", "referral income"],
    "darpa_balloon_challenge.py": ["all balloons confirmed: True", "best recruiter"],
    "sybil_attack_demo.py": ["NOT sybil-proof", "RIT's defenses"],
    "design_challenges.py": ["DEVIATION WINS", "honesty holds"],
    "geo_sensing_market.py": ["job completed: True", "per-region market"],
    "mechanism_arena.py": ["bit_identical=True", "rit sybil gain minimal: True"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}:\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_and_reports(name):
    output = run_example(name)
    for snippet in EXPECTATIONS[name]:
        assert snippet in output, (
            f"{name} output missing {snippet!r}; got:\n{output[:2000]}"
        )


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTATIONS), (
        "examples and test expectations drifted apart"
    )
