"""Arena harness: determinism, scorecard schema, and the acceptance gates."""

import json

import pytest

from repro.arena.harness import (
    ARENA_BENCH_PRESET,
    ARENA_SMOKE_PRESET,
    ArenaConfig,
    build_streams,
    canonical_scorecard,
    render_arena_report,
    run_arena_report,
    stream_fingerprint,
)
from repro.core.exceptions import ConfigurationError
from repro.devtools.bench import _validate_arena_section


@pytest.fixture(scope="module")
def smoke_report():
    return run_arena_report(ARENA_SMOKE_PRESET)


class TestConfig:
    def test_presets_pin_the_acceptance_roster(self):
        assert "rit" in ARENA_BENCH_PRESET.mechanisms
        assert len(ARENA_SMOKE_PRESET.mechanisms) >= 4
        assert {"rit", "omg", "glt"} <= set(ARENA_SMOKE_PRESET.mechanisms)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArenaConfig(attack="ddos")
        with pytest.raises(ConfigurationError):
            ArenaConfig(mechanisms=())


class TestStreams:
    def test_build_streams_is_pure(self):
        job1, clean1, attacked1, sched1 = build_streams(ARENA_SMOKE_PRESET)
        job2, clean2, attacked2, sched2 = build_streams(ARENA_SMOKE_PRESET)
        assert stream_fingerprint(clean1) == stream_fingerprint(clean2)
        assert stream_fingerprint(attacked1) == stream_fingerprint(attacked2)
        assert sched1 == sched2
        assert job1.counts == job2.counts

    def test_fingerprint_is_order_sensitive(self):
        _, clean, _, _ = build_streams(ARENA_SMOKE_PRESET)
        reordered = [clean[1], clean[0]] + list(clean[2:])
        assert stream_fingerprint(reordered) != stream_fingerprint(clean)


class TestReport:
    def test_smoke_match_passes_every_gate(self, smoke_report):
        section, problems = smoke_report
        assert problems == []
        assert section["determinism"]["bit_identical"] is True
        assert section["determinism"]["runs"] == 2
        assert section["rit_sybil_gain_minimal"] is True

    def test_scorecard_covers_the_roster(self, smoke_report):
        section, _ = smoke_report
        assert tuple(section["mechanisms"]) == ARENA_SMOKE_PRESET.mechanisms
        for entry in section["mechanisms"].values():
            assert entry["accounting"] in ("cumulative", "incremental")
            for side in ("clean", "attacked"):
                assert entry[side]["epochs"] > 0
                assert entry[side]["stream_sha256"] == (
                    section["stream"][f"{side}_sha256"]
                )

    def test_glt_budget_checked_exactly(self, smoke_report):
        section, _ = smoke_report
        budget = section["mechanisms"]["glt"]["budget"]
        assert budget["checked"] is True
        assert budget["consistent"] is True
        assert budget["budget_cents"] == 100_000

    def test_section_passes_the_bench_validator(self, smoke_report):
        section, _ = smoke_report
        assert _validate_arena_section(section) == []
        # And as part of a full document with other sections absent.
        assert "arena is not an object" in _validate_arena_section([])

    def test_canonical_scorecard_strips_latency_only(self, smoke_report):
        section, _ = smoke_report
        canonical = canonical_scorecard(section)
        for entry in canonical["mechanisms"].values():
            assert "latency_seconds" not in entry
        assert "determinism" not in canonical
        assert canonical["stream"] == section["stream"]
        # The original is untouched.
        assert all(
            "latency_seconds" in entry
            for entry in section["mechanisms"].values()
        )

    def test_render_mentions_every_mechanism(self, smoke_report):
        section, _ = smoke_report
        text = render_arena_report(section)
        for name in ARENA_SMOKE_PRESET.mechanisms:
            assert name in text
        assert "bit_identical=True" in text

    def test_section_is_json_serializable(self, smoke_report):
        section, _ = smoke_report
        round_tripped = json.loads(json.dumps(section, sort_keys=True))
        assert round_tripped["config"]["seed"] == ARENA_SMOKE_PRESET.seed


class TestValidatorRejections:
    def test_rejects_missing_mechanisms(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        del broken["mechanisms"]["rit"]
        errors = _validate_arena_section(broken)
        assert any("must include 'rit'" in e for e in errors)
        assert any("at least 4" in e for e in errors)

    def test_rejects_non_deterministic_rerun(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        broken["determinism"]["bit_identical"] = False
        errors = _validate_arena_section(broken)
        assert any("bit_identical" in e for e in errors)

    def test_rejects_budget_violation(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        broken["mechanisms"]["glt"]["budget"]["consistent"] = False
        errors = _validate_arena_section(broken)
        assert any("budget.consistent" in e for e in errors)

    def test_rejects_diverged_stream_fingerprint(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        broken["mechanisms"]["omg"]["attacked"]["stream_sha256"] = "0" * 64
        errors = _validate_arena_section(broken)
        assert any("diverges from the match reference" in e for e in errors)

    def test_rejects_rit_losing_on_sybil_gain(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        broken["rit_sybil_gain_minimal"] = False
        errors = _validate_arena_section(broken)
        assert any("rit_sybil_gain_minimal" in e for e in errors)

    def test_rejects_unknown_mechanism(self, smoke_report):
        section, _ = smoke_report
        broken = json.loads(json.dumps(section))
        broken["mechanisms"]["vcg"] = broken["mechanisms"]["omg"]
        errors = _validate_arena_section(broken)
        assert any("unknown mechanism" in e for e in errors)
