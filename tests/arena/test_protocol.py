"""The EpochMechanism contract, the registry, and the RIT adapter.

The load-bearing test is the differential: an arena replay of RIT must be
bit-identical to the service's offline anchor
(:func:`repro.service.replay.replay_outcomes`) — same epochs, same
winners, same payments — because both walk the same EpochPipeline with
the same pure per-epoch seeds.
"""

import pytest

from repro.arena import (
    ACCOUNTING_MODES,
    MECHANISM_NAMES,
    EpochMechanism,
    RITEpochMechanism,
    RewardRuleMechanism,
    available_mechanisms,
    create_mechanism,
    replay_stream,
)
from repro.arena.harness import ARENA_SMOKE_PRESET, build_streams
from repro.baselines import mit_referral_rewards
from repro.core.exceptions import ConfigurationError
from repro.core.rit import RIT
from repro.obs import Tracer
from repro.service.epochs import EpochPolicy
from repro.service.ledger import canonical_outcome
from repro.service.replay import replay_outcomes


class TestRegistry:
    def test_names_are_stable(self):
        assert available_mechanisms() == MECHANISM_NAMES
        assert MECHANISM_NAMES[0] == "rit"
        assert set(MECHANISM_NAMES) >= {"rit", "omg", "glt"}

    def test_every_entry_constructs_fresh_instances(self):
        for name in MECHANISM_NAMES:
            first = create_mechanism(name)
            second = create_mechanism(name)
            assert isinstance(first, EpochMechanism)
            assert first is not second
            assert first.mechanism_id == name
            assert first.accounting in ACCOUNTING_MODES

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            create_mechanism("vcg")

    def test_cli_mirror_matches_registry(self):
        from repro.cli import _MECHANISM_NAMES

        assert tuple(_MECHANISM_NAMES) == MECHANISM_NAMES

    def test_bench_mirror_matches_registry(self):
        from repro.devtools.bench import _ARENA_MECHANISMS

        assert tuple(_ARENA_MECHANISMS) == MECHANISM_NAMES


class TestRITAdapter:
    def test_arena_replay_matches_offline_anchor(self):
        """RIT behind the arena contract == replay_outcomes, bit for bit."""
        config = ARENA_SMOKE_PRESET
        job, clean, attacked, _ = build_streams(config)
        policy = EpochPolicy(max_events=config.epoch_max_events)
        offline_mech = RIT(
            rng_policy="per-type",
            round_budget="until-complete",
            raise_on_failure=False,
        )
        for stream in (clean, attacked):
            arena = replay_stream(
                job, stream, RITEpochMechanism(),
                seed=config.seed, policy=policy,
            )
            anchor = replay_outcomes(
                stream, job, offline_mech, seed=config.seed, policy=policy
            )
            assert [i for i, _ in arena] == [b.index for b, _ in anchor]
            for (_, got), (_, want) in zip(arena, anchor):
                assert canonical_outcome(got) == canonical_outcome(want)

    def test_with_tracer_clones_inner_mechanism(self):
        base = RITEpochMechanism()
        tracer = Tracer("arena-test", seed=0)
        traced = base.with_tracer(tracer)
        assert traced is not base
        assert traced.tracer is tracer
        assert traced._mechanism is not base._mechanism
        assert base.tracer.enabled is False


class TestRewardRuleMechanism:
    def test_exposes_reward_function_for_examples(self):
        mech = create_mechanism("mit-referral")
        assert isinstance(mech, RewardRuleMechanism)
        assert mech.reward_function is mit_referral_rewards

    def test_runs_the_naive_combo(self):
        """Same outcome as hand-wiring NaiveComboMechanism over kth-price."""
        from repro.baselines import KthPriceAuction, NaiveComboMechanism

        config = ARENA_SMOKE_PRESET
        job, clean, _, _ = build_streams(config)
        policy = EpochPolicy(max_events=config.epoch_max_events)
        arena = replay_stream(
            job, clean, create_mechanism("mit-referral"),
            seed=config.seed, policy=policy,
        )
        assert arena, "the smoke stream must close at least one epoch"
        combo = NaiveComboMechanism(
            auction=KthPriceAuction(), reward_function=mit_referral_rewards
        )
        from repro.service.epochs import EpochPipeline, epoch_seed

        pipeline = EpochPipeline(job, policy)
        hand = []
        for event in clean:
            _, snapshots = pipeline.step(event)
            for snap in snapshots:
                seed = epoch_seed(config.seed, snap.batch.index)
                hand.append(combo.run(job, snap.asks, snap.tree, seed))
        tail = pipeline.finish()
        if tail is not None:
            seed = epoch_seed(config.seed, tail.batch.index)
            hand.append(combo.run(job, tail.asks, tail.tree, seed))
        assert len(arena) == len(hand)
        for (_, got), want in zip(arena, hand):
            assert canonical_outcome(got) == canonical_outcome(want)
