"""GLT lottery tree: exact integer-cent budget consistency, by construction."""

import math

import pytest

from repro.arena import LotteryTreeMechanism
from repro.core.exceptions import ConfigurationError
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads import paper_scenario
from repro.workloads.users import UserDistribution


def chain_tree(ids):
    tree = IncentiveTree()
    parent = ROOT
    for uid in ids:
        tree.attach(uid, parent)
        parent = uid
    return tree


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LotteryTreeMechanism(budget=0.0)
        with pytest.raises(ConfigurationError):
            LotteryTreeMechanism(delta=1.5)
        with pytest.raises(ConfigurationError):
            LotteryTreeMechanism(gamma=-0.1)

    def test_declares_budget_in_cents(self):
        assert LotteryTreeMechanism(budget=1000.0).budget_cents == 100_000
        assert LotteryTreeMechanism(budget=12.34).budget_cents == 1234


class TestWeights:
    def test_solicitation_weight_decays_per_hop(self):
        """w_1 over chain 1->2->3 with unit contributions:
        c + δ(γ·c + γ²·c)."""
        mech = LotteryTreeMechanism(delta=0.5, gamma=0.5)
        tree = chain_tree([1, 2, 3])
        weights = mech._weights(tree, {1: 1.0, 2: 1.0, 3: 1.0})
        assert weights[1] == pytest.approx(1.0 + 0.5 * (0.5 + 0.25))
        assert weights[2] == pytest.approx(1.0 + 0.5 * 0.5)
        assert weights[3] == pytest.approx(1.0)

    def test_zero_contribution_subtree_earns_no_weight(self):
        mech = LotteryTreeMechanism()
        tree = chain_tree([1, 2])
        weights = mech._weights(tree, {1: 4.0})
        assert weights == {1: pytest.approx(4.0)}


class TestApportionment:
    def test_hand_checked_largest_remainder(self):
        """Budget 100 cents over weights 1:1:1 -> 34/33/33 (remainders
        tie at 1/3; the extra cent goes to the smallest id)."""
        mech = LotteryTreeMechanism(budget=1.0)
        cents = mech._apportion({1: 1.0, 2: 1.0, 3: 1.0})
        assert cents == {1: 34, 2: 33, 3: 33}

    def test_exact_sum_across_seeded_weights(self):
        """Whatever the weights, the cent total is the budget, exactly."""
        import numpy as np

        mech = LotteryTreeMechanism(budget=997.13)
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(1, 40))
            weights = {
                int(uid): float(w)
                for uid, w in enumerate(rng.random(n) * 50 + 1e-6)
            }
            cents = mech._apportion(weights)
            assert sum(cents.values()) == mech.budget_cents


class TestRunEpoch:
    def job_and_profile(self, seed=3):
        job = Job.uniform(2, 4)
        scenario = paper_scenario(
            60, job, rng=seed, distribution=UserDistribution(num_types=2)
        )
        return job, scenario.truthful_asks(), scenario.tree

    def test_settled_epoch_disburses_budget_exactly(self):
        job, asks, tree = self.job_and_profile()
        mech = LotteryTreeMechanism(budget=250.0)
        outcome = mech.run_epoch(job, asks, tree, None, 0)
        assert outcome.completed
        cents = sum(int(round(p * 100)) for p in outcome.payments.values())
        assert cents == mech.budget_cents

    def test_exact_consistency_across_seeds(self):
        mech = LotteryTreeMechanism(budget=777.77)
        for seed in range(5):
            job, asks, tree = self.job_and_profile(seed=seed)
            outcome = mech.run_epoch(job, asks, tree, None, 0)
            if not outcome.completed:
                continue
            cents = sum(int(round(p * 100)) for p in outcome.payments.values())
            assert cents == mech.budget_cents

    def test_voided_auction_settles_nothing(self):
        """Supply below m_i voids the inner auction; no lottery runs."""
        job = Job.uniform(1, 5)
        tree = chain_tree([1])
        asks = {1: Ask(task_type=0, capacity=1, value=2.0)}
        outcome = LotteryTreeMechanism().run_epoch(job, asks, tree, None, 0)
        assert not outcome.completed
        assert outcome.payments == {}

    def test_allocation_comes_from_the_inner_auction(self):
        job, asks, tree = self.job_and_profile()
        from repro.baselines import KthPriceAuction

        inner = KthPriceAuction().run(job, asks, tree)
        outcome = LotteryTreeMechanism().run_epoch(job, asks, tree, None, 0)
        assert outcome.allocation == inner.allocation
        assert outcome.auction_payments.keys() == inner.auction_payments.keys()

    def test_solicitors_of_contributors_share_the_prize(self):
        """An ancestor with no own contribution is still paid via δ/γ."""
        job = Job.uniform(1, 1)
        tree = chain_tree([1, 2, 3])
        asks = {
            2: Ask(task_type=0, capacity=1, value=1.0),
            3: Ask(task_type=0, capacity=1, value=2.0),
        }
        mech = LotteryTreeMechanism(budget=100.0)
        outcome = mech.run_epoch(job, asks, tree, None, 0)
        assert outcome.completed
        # User 2 wins (lowest ask); users 1 (solicitor) and 2 split the
        # prize by weight; user 3 contributed nothing and gets nothing.
        assert set(outcome.payments) == {1, 2}
        assert outcome.payments[2] > outcome.payments[1] > 0.0
        cents = sum(int(round(p * 100)) for p in outcome.payments.values())
        assert cents == mech.budget_cents

    def test_deterministic_given_inputs(self):
        from repro.service.ledger import canonical_outcome

        job, asks, tree = self.job_and_profile()
        first = LotteryTreeMechanism().run_epoch(job, asks, tree, None, 0)
        second = LotteryTreeMechanism().run_epoch(job, asks, tree, None, 0)
        assert canonical_outcome(first) == canonical_outcome(second)
