"""OMG mechanism: online arrival, stage budgets, posted-price truthfulness."""

import pytest

from repro.arena import OMGMechanism
from repro.core.exceptions import ConfigurationError
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


def make_tree(user_ids):
    tree = IncentiveTree()
    for uid in user_ids:
        tree.attach(uid, ROOT)
    return tree


def run_epochs(mech, job, epochs):
    """Drive run_epoch over cumulative ask snapshots; returns outcomes."""
    out = []
    cumulative = {}
    for index, asks in enumerate(epochs):
        cumulative.update(asks)
        tree = make_tree(list(cumulative))
        out.append(mech.run_epoch(job, dict(cumulative), tree, None, index))
    return out


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            OMGMechanism(budget_per_task=0.0)
        with pytest.raises(ConfigurationError):
            OMGMechanism(stage_horizon=0)


class TestOnlineArrival:
    def test_each_user_considered_exactly_once(self):
        """A loser in epoch 0 is not re-offered in epoch 1 even though the
        released budget (and hence the posted price) grew."""
        job = Job.uniform(1, 4)
        mech = OMGMechanism(budget_per_task=4.0, stage_horizon=2).fresh()
        # Budget 16, epoch 0 releases 8 -> price 8/4 = 2.0.
        expensive = {1: Ask(task_type=0, capacity=1, value=3.0)}
        first = mech.run_epoch(job, expensive, make_tree([1]), None, 0)
        assert first.allocation == {}
        # Epoch 1 releases all 16 -> price 4.0 > 3.0, but user 1 already
        # arrived; only the new user 2 is offered.
        both = dict(expensive)
        both[2] = Ask(task_type=0, capacity=1, value=3.0)
        second = mech.run_epoch(job, both, make_tree([1, 2]), None, 1)
        assert 1 not in second.allocation
        assert second.allocation == {2: 1}

    def test_incremental_epochs_are_disjoint(self):
        job = Job.uniform(1, 6)
        mech = OMGMechanism(budget_per_task=6.0, stage_horizon=1).fresh()
        epochs = run_epochs(
            mech,
            job,
            [
                {1: Ask(task_type=0, capacity=2, value=1.0)},
                {2: Ask(task_type=0, capacity=2, value=1.0)},
            ],
        )
        assert set(epochs[0].allocation) == {1}
        assert set(epochs[1].allocation) == {2}

    def test_fresh_resets_arrival_memory(self):
        job = Job.uniform(1, 2)
        mech = OMGMechanism().fresh()
        asks = {1: Ask(task_type=0, capacity=2, value=0.5)}
        first = mech.run_epoch(job, asks, make_tree([1]), None, 0)
        assert first.allocation == {1: 2}
        again = mech.fresh().run_epoch(job, asks, make_tree([1]), None, 0)
        assert again.allocation == {1: 2}


class TestStageBudget:
    def test_geometric_release_schedule(self):
        mech = OMGMechanism(budget_per_task=1.0, stage_horizon=4)
        budget = 16.0
        released = [mech._released_by(e, budget) for e in range(5)]
        assert released == [2.0, 4.0, 8.0, 16.0, 16.0]

    def test_total_payment_never_exceeds_budget(self):
        job = Job.uniform(2, 3)
        mech = OMGMechanism(budget_per_task=2.0, stage_horizon=3).fresh()
        epochs = run_epochs(
            mech,
            job,
            [
                {i: Ask(task_type=i % 2, capacity=2, value=0.1) for i in range(1, 4)},
                {i: Ask(task_type=i % 2, capacity=2, value=0.2) for i in range(4, 8)},
                {i: Ask(task_type=i % 2, capacity=1, value=0.3) for i in range(8, 12)},
            ],
        )
        total = sum(sum(o.payments.values()) for o in epochs)
        assert total <= 2.0 * job.size + 1e-9

    def test_completion_tracks_cumulative_remaining(self):
        job = Job.uniform(1, 2)
        mech = OMGMechanism(budget_per_task=5.0, stage_horizon=1).fresh()
        partial = mech.run_epoch(
            job, {1: Ask(task_type=0, capacity=1, value=0.5)}, make_tree([1]), None, 0
        )
        assert not partial.completed
        done = mech.run_epoch(
            job,
            {
                1: Ask(task_type=0, capacity=1, value=0.5),
                2: Ask(task_type=0, capacity=1, value=0.5),
            },
            make_tree([1, 2]),
            None,
            1,
        )
        assert done.completed


class TestTruthfulness:
    def test_payment_is_posted_price_not_bid(self):
        """Two users differing only in their (winning) bid are paid the
        same posted price — the payment never reads the accepted bid."""
        job = Job.uniform(1, 2)
        base = OMGMechanism(budget_per_task=3.0, stage_horizon=1)
        outcomes = {}
        for bid in (0.5, 2.9):
            mech = base.fresh()
            asks = {1: Ask(task_type=0, capacity=1, value=bid)}
            outcomes[bid] = mech.run_epoch(job, asks, make_tree([1]), None, 0)
        # Posted price = 6 budget / 2 remaining tasks = 3.0 ≥ both bids.
        assert outcomes[0.5].payments[1] == pytest.approx(3.0)
        assert outcomes[2.9].payments[1] == pytest.approx(3.0)

    def test_overbidding_the_threshold_just_loses(self):
        job = Job.uniform(1, 2)
        mech = OMGMechanism(budget_per_task=3.0, stage_horizon=1).fresh()
        asks = {1: Ask(task_type=0, capacity=1, value=3.5)}
        outcome = mech.run_epoch(job, asks, make_tree([1]), None, 0)
        assert outcome.allocation == {}
        assert outcome.payments == {}


class TestDeterminism:
    def test_replay_is_bit_identical(self):
        job = Job.uniform(2, 3)
        epochs = [
            {i: Ask(task_type=i % 2, capacity=2, value=0.3 + 0.1 * i) for i in range(1, 5)},
            {i: Ask(task_type=i % 2, capacity=1, value=0.2) for i in range(5, 9)},
        ]
        runs = []
        for _ in range(2):
            mech = OMGMechanism(budget_per_task=2.0, stage_horizon=2).fresh()
            runs.append(run_epochs(mech, job, [dict(e) for e in epochs]))
        from repro.service.ledger import canonical_outcome

        for left, right in zip(*runs):
            assert canonical_outcome(left) == canonical_outcome(right)
