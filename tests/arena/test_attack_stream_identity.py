"""Satellite gate: seeded attack schedules inject mechanism-independently.

The attack splice must be a pure function of ``(stream seeds, attack
seed)`` — the *consuming mechanism can never perturb the bytes it is
fed*.  These tests pin that three ways: repeated rebuilds are
byte-identical, the schedules match dict-for-dict, and a full arena
match records one fingerprint pair shared by every mechanism entry.
"""

from dataclasses import replace

import pytest

from repro.arena.harness import (
    ARENA_SMOKE_PRESET,
    build_streams,
    run_arena,
    stream_fingerprint,
)
from repro.sentinel.attacks import ATTACK_KINDS
from repro.service.events import event_to_dict


class TestRebuildIdentity:
    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_every_attack_kind_rebuilds_byte_identically(self, kind):
        config = replace(ARENA_SMOKE_PRESET, attack=kind)
        builds = [build_streams(config) for _ in range(3)]
        reference = builds[0]
        for job, clean, attacked, schedule in builds[1:]:
            assert [event_to_dict(e) for e in clean] == [
                event_to_dict(e) for e in reference[1]
            ]
            assert [event_to_dict(e) for e in attacked] == [
                event_to_dict(e) for e in reference[2]
            ]
            assert schedule == reference[3]

    def test_attack_seed_controls_the_schedule(self):
        """Different attack seeds pick different victims (and different
        bytes) while the clean stream is untouched — the splice layers on
        top of the load, it never rewrites it."""
        a = build_streams(ARENA_SMOKE_PRESET)
        b = build_streams(replace(ARENA_SMOKE_PRESET, attack_seed=116))
        assert stream_fingerprint(a[1]) == stream_fingerprint(b[1])
        assert stream_fingerprint(a[2]) != stream_fingerprint(b[2])
        assert a[3]["victim"] != b[3]["victim"] or (
            a[3]["identities"] != b[3]["identities"]
        )

    def test_schedule_carries_its_seed(self):
        _, _, _, schedule = build_streams(ARENA_SMOKE_PRESET)
        assert schedule["seed"] == ARENA_SMOKE_PRESET.attack_seed
        assert schedule["kind"] == ARENA_SMOKE_PRESET.attack
        assert schedule["injected_events"] > 0


class TestMatchIdentity:
    def test_every_mechanism_sees_the_reference_bytes(self):
        """Inside a full match the per-mechanism rebuild fingerprints all
        equal the reference pair — no mechanism's replay depends on which
        mechanism ran before it."""
        doc = run_arena(ARENA_SMOKE_PRESET)
        reference = doc["stream"]
        assert len(doc["mechanisms"]) == len(ARENA_SMOKE_PRESET.mechanisms)
        for entry in doc["mechanisms"].values():
            assert entry["clean"]["stream_sha256"] == reference["clean_sha256"]
            assert (
                entry["attacked"]["stream_sha256"]
                == reference["attacked_sha256"]
            )

    def test_roster_order_does_not_change_the_streams(self):
        """Running the roster reversed yields the same per-mechanism
        stream fingerprints and the same sybil gains."""
        forward = run_arena(ARENA_SMOKE_PRESET)
        reversed_config = replace(
            ARENA_SMOKE_PRESET,
            mechanisms=tuple(reversed(ARENA_SMOKE_PRESET.mechanisms)),
        )
        backward = run_arena(reversed_config)
        assert forward["stream"] == backward["stream"]
        assert forward["sybil_gains"] == backward["sybil_gains"]
        for name in ARENA_SMOKE_PRESET.mechanisms:
            fwd = forward["mechanisms"][name]
            bwd = backward["mechanisms"][name]
            assert fwd["clean"]["stream_sha256"] == bwd["clean"]["stream_sha256"]
            assert (
                fwd["attacked"]["stream_sha256"]
                == bwd["attacked"]["stream_sha256"]
            )
