"""Tests for the Remark 6.1 capacity-threshold growth policy."""

import pytest

from repro.core.exceptions import TreeError
from repro.core.types import Job, Population, User
from repro.socialnet.graph import SocialGraph
from repro.tree.growth import capacity_threshold, grow_tree, required_supply
from repro.tree.builder import build_spanning_forest


def line_graph(n):
    g = SocialGraph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def uniform_population(n, capacity=2, task_type=0):
    return Population(
        User(i, task_type, capacity, 1.0 + i * 0.1) for i in range(n)
    )


class TestRequiredSupply:
    def test_doubles_each_type(self):
        assert required_supply(Job([3, 0, 7])) == {0: 6, 1: 0, 2: 14}


class TestCapacityThreshold:
    def test_stops_exactly_at_supply(self):
        """Job needs 2*4=8 units of type 0; users supply 2 each -> the
        growth should stop after the 4th join."""
        pop = uniform_population(10, capacity=2)
        job = Job([4])
        tree = build_spanning_forest(
            line_graph(10), stop_condition=capacity_threshold(pop, job)
        )
        assert len(tree) == 4

    def test_multi_type_waits_for_slowest_type(self):
        users = [User(i, i % 2, 2, 1.0) for i in range(10)]
        pop = Population(users)
        job = Job([2, 4])  # need 4 units of τ0, 8 of τ1
        tree = build_spanning_forest(
            line_graph(10), stop_condition=capacity_threshold(pop, job)
        )
        # τ1 users are the odd ids; 4 of them are needed -> id 7 is the
        # 4th; joins happen in id order along the line.
        assert len(tree) == 8

    def test_zero_demand_type_needs_nothing(self):
        pop = uniform_population(5, capacity=2)
        job = Job([1, 0])
        tree = build_spanning_forest(
            line_graph(5), stop_condition=capacity_threshold(pop, job)
        )
        assert len(tree) == 1

    def test_nodes_outside_population_contribute_nothing(self):
        pop = uniform_population(2, capacity=1)
        job = Job([2])
        condition = capacity_threshold(pop, job)
        tree = build_spanning_forest(line_graph(5), stop_condition=condition)
        # users 0 and 1 supply 2 of the 4 required units; 2..4 supply
        # nothing -> the whole graph joins.
        assert len(tree) == 5


class TestGrowTree:
    def test_grows_until_supply_met(self):
        pop = uniform_population(20, capacity=2)
        job = Job([5])  # needs 10 units -> 5 users
        tree = grow_tree(line_graph(20), pop, job)
        assert len(tree) == 5

    def test_exhausted_graph_keeps_everyone(self):
        pop = uniform_population(3, capacity=1)
        job = Job([5])  # needs 10 units; only 3 available
        tree = grow_tree(line_graph(3), pop, job)
        assert len(tree) == 3

    def test_enforce_supply_raises_when_unmet(self):
        pop = uniform_population(3, capacity=1)
        job = Job([5])
        with pytest.raises(TreeError):
            grow_tree(line_graph(3), pop, job, enforce_supply=True)

    def test_enforce_supply_passes_when_met(self):
        pop = uniform_population(20, capacity=2)
        job = Job([5])
        tree = grow_tree(line_graph(20), pop, job, enforce_supply=True)
        assert len(tree) >= 5

    def test_graph_smaller_than_population_rejected(self):
        pop = uniform_population(5)
        with pytest.raises(TreeError):
            grow_tree(line_graph(3), pop, Job([1]))
