"""Tests for the incentive-tree data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import TreeError
from repro.tree.incentive_tree import ROOT, IncentiveTree


def chain(n):
    tree = IncentiveTree()
    prev = ROOT
    for i in range(n):
        tree.attach(i, prev)
        prev = i
    return tree


def two_level():
    """root -> {0, 1}; 0 -> {2, 3}; 1 -> {4}."""
    tree = IncentiveTree()
    tree.attach(0, ROOT)
    tree.attach(1, ROOT)
    tree.attach(2, 0)
    tree.attach(3, 0)
    tree.attach(4, 1)
    return tree


class TestAttach:
    def test_empty_tree(self):
        tree = IncentiveTree()
        assert len(tree) == 0
        assert ROOT in tree
        assert 0 not in tree

    def test_attach_and_contains(self):
        tree = IncentiveTree()
        tree.attach(5, ROOT)
        assert 5 in tree
        assert len(tree) == 1

    def test_duplicate_node_rejected(self):
        tree = IncentiveTree()
        tree.attach(0, ROOT)
        with pytest.raises(TreeError):
            tree.attach(0, ROOT)

    def test_unknown_parent_rejected(self):
        with pytest.raises(TreeError):
            IncentiveTree().attach(1, 99)

    def test_negative_node_rejected(self):
        with pytest.raises(TreeError):
            IncentiveTree().attach(-5, ROOT)

    def test_children_order_is_insertion_order(self):
        tree = IncentiveTree()
        tree.attach(3, ROOT)
        tree.attach(1, ROOT)
        tree.attach(2, ROOT)
        assert tree.children(ROOT) == (3, 1, 2)


class TestQueries:
    def test_parent(self):
        tree = two_level()
        assert tree.parent(2) == 0
        assert tree.parent(0) == ROOT
        with pytest.raises(TreeError):
            tree.parent(77)

    def test_depth(self):
        tree = two_level()
        assert tree.depth(ROOT) == 0
        assert tree.depth(0) == 1
        assert tree.depth(4) == 2

    def test_depths_matches_depth(self):
        tree = two_level()
        depths = tree.depths()
        for node in tree.nodes():
            assert depths[node] == tree.depth(node)

    def test_ancestors(self):
        tree = chain(4)
        assert list(tree.ancestors(3)) == [2, 1, 0]
        assert list(tree.ancestors(0)) == []

    def test_descendants(self):
        tree = two_level()
        assert tree.descendants(0) == {2, 3}
        assert tree.descendants(4) == set()
        assert tree.descendants(ROOT) == {0, 1, 2, 3, 4}

    def test_subtree_size(self):
        tree = two_level()
        assert tree.subtree_size(0) == 3
        assert tree.subtree_size(ROOT) == 5

    def test_is_descendant(self):
        tree = two_level()
        assert tree.is_descendant(2, of=0)
        assert tree.is_descendant(2, of=ROOT)
        assert not tree.is_descendant(2, of=1)
        assert not tree.is_descendant(0, of=0)

    def test_bfs_order_parents_first(self):
        tree = two_level()
        order = tree.bfs_order()
        pos = {node: i for i, node in enumerate(order)}
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent != ROOT:
                assert pos[parent] < pos[node]

    def test_max_depth(self):
        assert chain(5).max_depth() == 5
        assert IncentiveTree().max_depth() == 0

    def test_children_of_unknown_node_raises(self):
        with pytest.raises(TreeError):
            two_level().children(99)


class TestMutation:
    def test_reattach_moves_subtree(self):
        tree = two_level()
        tree.reattach(0, 1)
        assert tree.parent(0) == 1
        assert tree.depth(2) == 3
        tree.validate()

    def test_reattach_to_root(self):
        tree = two_level()
        tree.reattach(2, ROOT)
        assert tree.parent(2) == ROOT
        tree.validate()

    def test_reattach_rejects_cycle(self):
        tree = two_level()
        with pytest.raises(TreeError):
            tree.reattach(0, 2)  # 2 is a descendant of 0
        with pytest.raises(TreeError):
            tree.reattach(0, 0)

    def test_reattach_children(self):
        tree = two_level()
        tree.reattach_children(0, 1)
        assert tree.children(0) == ()
        assert set(tree.children(1)) == {4, 2, 3}
        tree.validate()

    def test_remove_leaf(self):
        tree = two_level()
        tree.remove_leaf(4)
        assert 4 not in tree
        assert tree.children(1) == ()
        tree.validate()

    def test_remove_non_leaf_rejected(self):
        with pytest.raises(TreeError):
            two_level().remove_leaf(0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(TreeError):
            two_level().remove_leaf(99)


class TestSerializationPrimitives:
    def test_edge_round_trip(self):
        tree = two_level()
        rebuilt = IncentiveTree.from_edges(tree.to_edges())
        assert rebuilt.to_parent_map() == tree.to_parent_map()

    def test_from_edges_out_of_order(self):
        tree = IncentiveTree.from_edges([(0, 1), (ROOT, 0), (1, 2)])
        assert tree.depth(2) == 3

    def test_from_edges_orphan_rejected(self):
        with pytest.raises(TreeError):
            IncentiveTree.from_edges([(5, 6)])

    def test_parent_map_round_trip(self):
        tree = two_level()
        rebuilt = IncentiveTree.from_parent_map(tree.to_parent_map())
        assert rebuilt.to_parent_map() == tree.to_parent_map()

    def test_copy_is_independent(self):
        tree = two_level()
        clone = tree.copy()
        clone.attach(99, ROOT)
        assert 99 not in tree
        assert 99 in clone
        tree.validate()
        clone.validate()


class TestHypothesis:
    @given(
        parents=st.lists(st.integers(min_value=-1, max_value=30), min_size=0, max_size=30),
    )
    @settings(max_examples=100)
    def test_random_recursive_trees_are_consistent(self, parents):
        tree = IncentiveTree()
        for node, p in enumerate(parents):
            parent = ROOT if p < 0 or p >= node else p
            tree.attach(node, parent)
        tree.validate()
        depths = tree.depths()
        assert len(depths) == len(tree)
        # Every node's depth is its parent's depth + 1.
        for node in tree.nodes():
            parent = tree.parent(node)
            expected = 1 if parent == ROOT else depths[parent] + 1
            assert depths[node] == expected
        # Descendant sets and ancestor chains agree.
        for node in list(tree.nodes())[:10]:
            for desc in tree.descendants(node):
                assert node in list(tree.ancestors(desc))
