"""Tests for ASCII tree rendering."""

import pytest

from repro.core.exceptions import TreeError
from repro.tree.builder import chain_tree, star_tree
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.tree.visualize import render_subtree, render_tree


def two_level():
    tree = IncentiveTree()
    tree.attach(0, ROOT)
    tree.attach(1, ROOT)
    tree.attach(2, 0)
    tree.attach(3, 0)
    return tree


class TestRenderTree:
    def test_contains_all_nodes(self):
        text = render_tree(two_level())
        assert text.startswith("platform")
        for node in (0, 1, 2, 3):
            assert f"P{node}" in text

    def test_structure_markers(self):
        text = render_tree(two_level())
        assert "├─" in text
        assert "└─" in text

    def test_children_indented_under_parent(self):
        lines = render_tree(two_level()).splitlines()
        p0 = next(i for i, l in enumerate(lines) if "P0" in l)
        p2 = next(i for i, l in enumerate(lines) if "P2" in l)
        assert p2 > p0
        indent = lambda s: len(s) - len(s.lstrip(" │"))
        assert indent(lines[p2]) > indent(lines[p0])

    def test_custom_annotator(self):
        text = render_tree(two_level(), annotate=lambda n: f"user-{n}!")
        assert "user-2!" in text
        assert "P2" not in text

    def test_truncation(self):
        text = render_tree(chain_tree(50), max_nodes=5)
        assert "…" in text
        assert text.count("P") <= 6

    def test_empty_tree(self):
        assert render_tree(IncentiveTree()) == "platform"

    def test_bad_max_nodes(self):
        with pytest.raises(TreeError):
            render_tree(two_level(), max_nodes=0)

    def test_star_tree_flat(self):
        text = render_tree(star_tree(3))
        lines = text.splitlines()
        assert len(lines) == 4  # platform + 3 children


class TestRenderSubtree:
    def test_rooted_at_node(self):
        text = render_subtree(two_level(), 0)
        assert text.startswith("P0")
        assert "P2" in text and "P3" in text
        assert "P1" not in text

    def test_unknown_node(self):
        with pytest.raises(TreeError):
            render_subtree(two_level(), 42)
