"""Tests for the discrete-event solicitation simulator."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.types import Job, Population, User
from repro.socialnet.generators import twitter_like
from repro.socialnet.graph import SocialGraph
from repro.tree.dynamics import SolicitationResult, simulate_solicitation
from repro.tree.growth import capacity_threshold
from repro.tree.incentive_tree import ROOT


def line_graph(n):
    g = SocialGraph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestBasicCascade:
    def test_full_acceptance_covers_reachable(self):
        result = simulate_solicitation(
            line_graph(10), accept_prob=1.0, rng=0
        )
        assert result.num_joined == 10
        assert result.stopped_by == "exhausted"
        result.tree.validate()

    def test_seeds_join_at_time_zero(self):
        result = simulate_solicitation(line_graph(5), accept_prob=1.0, rng=1)
        assert result.join_times[0] == 0.0
        assert result.tree.parent(0) == ROOT

    def test_join_times_increase_along_the_chain(self):
        result = simulate_solicitation(
            line_graph(8), accept_prob=1.0, rng=2
        )
        times = [result.join_times[i] for i in range(8)]
        assert times == sorted(times)

    def test_parent_is_an_actual_inviter(self):
        graph = twitter_like(200, rng=3, mean_out_degree=6)
        result = simulate_solicitation(graph, accept_prob=1.0, rng=4)
        for node in result.tree.nodes():
            parent = result.tree.parent(node)
            if parent != ROOT:
                assert graph.has_edge(parent, node)
                assert result.join_times[parent] <= result.join_times[node]

    def test_determinism(self):
        graph = twitter_like(150, rng=5, mean_out_degree=6)
        a = simulate_solicitation(graph, rng=6)
        b = simulate_solicitation(graph, rng=6)
        assert a.join_times == b.join_times
        assert a.tree.to_parent_map() == b.tree.to_parent_map()

    def test_empty_graph(self):
        result = simulate_solicitation(SocialGraph(0), rng=0)
        assert result.num_joined == 0


class TestStopping:
    def test_threshold_limit(self):
        result = simulate_solicitation(
            line_graph(20), accept_prob=1.0, limit=7, rng=0
        )
        assert result.num_joined == 7
        assert result.stopped_by == "threshold"

    def test_horizon_cuts_cascade(self):
        result = simulate_solicitation(
            line_graph(100), accept_prob=1.0, mean_delay=1.0,
            horizon=3.0, rng=1,
        )
        assert result.stopped_by == "horizon"
        assert result.num_joined < 100
        assert all(t <= 3.0 for t in result.join_times.values())
        assert result.end_time == 3.0

    def test_capacity_stop_condition(self):
        pop = Population(User(i, 0, 2, 1.0) for i in range(20))
        job = Job([4])  # needs 8 units -> 4 users
        result = simulate_solicitation(
            line_graph(20),
            accept_prob=1.0,
            stop_condition=capacity_threshold(pop, job),
            rng=2,
        )
        assert result.num_joined == 4
        assert result.stopped_by == "condition"

    def test_rejections_slow_but_may_not_stop_coverage(self):
        """With accept_prob < 1 on a rich graph, coverage can still be
        high (multiple inviters per user) but takes longer."""
        graph = twitter_like(300, rng=7, mean_out_degree=10)
        fast = simulate_solicitation(graph, accept_prob=1.0, rng=8)
        slow = simulate_solicitation(graph, accept_prob=0.4, rng=8)
        assert slow.num_joined <= fast.num_joined
        if slow.num_joined >= 100 and fast.num_joined >= 100:
            assert slow.time_to_reach(100) >= fast.time_to_reach(100)


class TestResultViews:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_solicitation(
            twitter_like(250, rng=9, mean_out_degree=8),
            accept_prob=0.9, rng=10,
        )

    def test_recruitment_curve_monotone(self, result):
        curve = result.recruitment_curve(num_points=15)
        assert len(curve) == 15
        counts = [c for _, c in curve]
        assert counts == sorted(counts)
        assert counts[-1] == result.num_joined

    def test_curve_validation(self, result):
        with pytest.raises(ConfigurationError):
            result.recruitment_curve(num_points=1)

    def test_time_to_reach(self, result):
        assert result.time_to_reach(0) == 0.0
        assert result.time_to_reach(1) == 0.0  # a seed
        assert result.time_to_reach(result.num_joined + 1) is None
        mid = result.time_to_reach(result.num_joined // 2)
        assert mid is not None and mid <= result.end_time + 1e-9


class TestValidation:
    def test_bad_parameters(self):
        g = line_graph(3)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, accept_prob=0.0)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, accept_prob=1.5)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, mean_delay=0.0)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, limit=-1)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, horizon=-1.0)
        with pytest.raises(ConfigurationError):
            simulate_solicitation(g, seeds=[9])
