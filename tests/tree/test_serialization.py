"""Tests for tree (de)serialization."""

import json

import pytest

from repro.core.exceptions import TreeError
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.tree.serialization import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)


def sample_tree():
    tree = IncentiveTree()
    tree.attach(0, ROOT)
    tree.attach(1, 0)
    tree.attach(2, 0)
    tree.attach(3, 2)
    return tree


class TestDictRoundTrip:
    def test_round_trip(self):
        tree = sample_tree()
        rebuilt = tree_from_dict(tree_to_dict(tree))
        assert rebuilt.to_parent_map() == tree.to_parent_map()

    def test_empty_tree(self):
        rebuilt = tree_from_dict(tree_to_dict(IncentiveTree()))
        assert len(rebuilt) == 0

    def test_payload_is_json_safe(self):
        json.dumps(tree_to_dict(sample_tree()))

    def test_bad_version_rejected(self):
        with pytest.raises(TreeError):
            tree_from_dict({"version": 99, "edges": []})

    def test_missing_edges_rejected(self):
        with pytest.raises(TreeError):
            tree_from_dict({"version": 1})

    def test_malformed_edge_rejected(self):
        with pytest.raises(TreeError):
            tree_from_dict({"version": 1, "edges": [[1, 2, 3]]})
        with pytest.raises(TreeError):
            tree_from_dict({"version": 1, "edges": [["a", 2]]})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "tree.json"
        tree = sample_tree()
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.to_parent_map() == tree.to_parent_map()

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TreeError):
            load_tree(path)

    def test_load_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(TreeError):
            load_tree(path)
