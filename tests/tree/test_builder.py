"""Tests for the spanning-forest tree builder and synthetic trees."""

import numpy as np
import pytest

from repro.core.exceptions import TreeError
from repro.socialnet.graph import SocialGraph
from repro.tree.builder import (
    build_spanning_forest,
    chain_tree,
    random_tree,
    star_tree,
)
from repro.tree.incentive_tree import ROOT


def diamond_graph():
    """0 -> {1, 2}; 1 -> 3; 2 -> 3 (two invitations arrive at 3)."""
    g = SocialGraph(4)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    return g


class TestSpanningForest:
    def test_covers_all_reachable_nodes(self):
        tree = build_spanning_forest(diamond_graph())
        assert len(tree) == 4

    def test_tie_break_smallest_inviter(self):
        """Both 1 and 2 invite 3 in the same round; 1 wins (smaller id)."""
        tree = build_spanning_forest(diamond_graph())
        assert tree.parent(3) == 1

    def test_seeds_default_to_indegree_zero(self):
        tree = build_spanning_forest(diamond_graph())
        assert tree.parent(0) == ROOT

    def test_explicit_seeds(self):
        tree = build_spanning_forest(diamond_graph(), seeds=[2])
        assert tree.parent(2) == ROOT
        assert tree.parent(3) == 2  # only inviter in round 1
        # 0 and 1 are unreachable from 2 -> spontaneous joiners.
        assert tree.parent(0) == ROOT

    def test_seed_out_of_range_rejected(self):
        with pytest.raises(TreeError):
            build_spanning_forest(diamond_graph(), seeds=[9])

    def test_limit_stops_growth(self):
        tree = build_spanning_forest(diamond_graph(), limit=2)
        assert len(tree) == 2

    def test_limit_zero(self):
        assert len(build_spanning_forest(diamond_graph(), limit=0)) == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(TreeError):
            build_spanning_forest(diamond_graph(), limit=-1)

    def test_stop_condition(self):
        stopped_at = []

        def stop(tree, node):
            stopped_at.append(node)
            return len(tree) >= 3

        tree = build_spanning_forest(diamond_graph(), stop_condition=stop)
        assert len(tree) == 3

    def test_disconnected_components_join_spontaneously(self):
        g = SocialGraph(5)
        g.add_edge(0, 1)
        g.add_edge(3, 4)
        tree = build_spanning_forest(g)
        assert len(tree) == 5
        # 2 has no edges at all; it joins as a root child.
        assert tree.parent(2) == ROOT

    def test_cycle_graph_is_fully_covered(self):
        g = SocialGraph(4)
        for i in range(4):
            g.add_edge(i, (i + 1) % 4)
        tree = build_spanning_forest(g)  # no in-degree-0 node: seed = 0
        assert len(tree) == 4
        assert tree.parent(0) == ROOT
        tree.validate()

    def test_empty_graph(self):
        assert len(build_spanning_forest(SocialGraph(0))) == 0

    def test_is_spanning_tree_of_graph_edges(self):
        """Every non-root tree edge must be a graph edge."""
        gen = np.random.default_rng(5)
        g = SocialGraph(50)
        for _ in range(200):
            u, v = gen.integers(0, 50, size=2)
            if u != v:
                g.add_edge(int(u), int(v))
        tree = build_spanning_forest(g)
        assert len(tree) == 50
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent != ROOT:
                assert g.has_edge(parent, node)

    def test_level_synchronous_depths(self):
        """A node's depth equals 1 + BFS distance from the seed set."""
        g = SocialGraph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(0, 4)
        g.add_edge(4, 3)  # 3 reachable at distance 2 via 4, 3 via chain
        g.add_edge(3, 5)
        tree = build_spanning_forest(g, seeds=[0])
        assert tree.depth(3) == 3  # joined in round 2 (via 4, smaller depth)
        assert tree.parent(3) in (2, 4)
        # invited simultaneously by 2 (depth 3)? no: 4 invites at round 2,
        # chain reaches 3 at round 3 -> 4 got there first.
        assert tree.parent(3) == 4


class TestSyntheticTrees:
    def test_chain_tree(self):
        tree = chain_tree(5)
        assert tree.max_depth() == 5
        assert tree.parent(0) == ROOT
        assert tree.parent(4) == 3

    def test_star_tree(self):
        tree = star_tree(5)
        assert tree.max_depth() == 1
        assert all(tree.parent(i) == ROOT for i in range(5))

    def test_random_tree_is_valid(self):
        tree = random_tree(40, np.random.default_rng(0))
        tree.validate()
        assert len(tree) == 40

    def test_random_tree_respects_branching_cap(self):
        tree = random_tree(60, np.random.default_rng(1), max_children=2)
        for node in tree.nodes():
            assert len(tree.children(node)) <= 2

    def test_random_tree_negative_rejected(self):
        with pytest.raises(TreeError):
            random_tree(-1, np.random.default_rng(0))
