"""Tests for incentive-tree metrics."""

import pytest

from repro.tree.builder import chain_tree, star_tree
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.tree.metrics import (
    TreeMetrics,
    compute_metrics,
    depth_histogram,
    referral_weight,
)


def two_level():
    tree = IncentiveTree()
    tree.attach(0, ROOT)
    tree.attach(1, ROOT)
    tree.attach(2, 0)
    tree.attach(3, 0)
    tree.attach(4, 2)
    return tree


class TestDepthHistogram:
    def test_counts(self):
        assert depth_histogram(two_level()) == {1: 2, 2: 2, 3: 1}

    def test_empty(self):
        assert depth_histogram(IncentiveTree()) == {}

    def test_star(self):
        assert depth_histogram(star_tree(5)) == {1: 5}


class TestReferralWeight:
    def test_depth_one_contributes_nothing(self):
        assert referral_weight(star_tree(3), 0) == 0.0

    def test_depth_two(self):
        tree = two_level()
        assert referral_weight(tree, 2) == pytest.approx(1 * 0.25)

    def test_depth_three(self):
        tree = two_level()
        assert referral_weight(tree, 4) == pytest.approx(2 * 0.125)

    def test_weight_vanishes_at_depth(self):
        tree = chain_tree(100)
        assert referral_weight(tree, 99) < 1e-20


class TestComputeMetrics:
    def test_two_level_metrics(self):
        m = compute_metrics(two_level())
        assert m.num_nodes == 5
        assert m.height == 3
        assert m.num_leaves == 3  # 1, 3, 4
        assert m.num_roots == 2
        assert m.max_branching == 2
        assert m.mean_depth == pytest.approx((1 + 1 + 2 + 2 + 3) / 5)
        assert m.referral_weight_total == pytest.approx(0.25 + 0.25 + 0.25)

    def test_star(self):
        m = compute_metrics(star_tree(4))
        assert m.height == 1
        assert m.num_leaves == 4
        assert m.num_roots == 4
        assert m.referral_weight_total == 0.0

    def test_chain(self):
        m = compute_metrics(chain_tree(4))
        assert m.height == 4
        assert m.num_leaves == 1
        assert m.mean_branching == pytest.approx(1.0)

    def test_empty(self):
        m = compute_metrics(IncentiveTree())
        assert m.num_nodes == 0
        assert m.height == 0

    def test_referral_weight_total_bounds_outlay_share(self):
        """Σ (r-1)(1/2)^r is each node's max contribution *share*, so the
        total bounds the referral outlay when every auction payment is
        equal — sanity-check that accounting on a chain."""
        from repro.core.payments import tree_payments

        tree = chain_tree(6)
        pays = {i: 1.0 for i in range(6)}
        types = {i: i % 2 for i in range(6)}
        p = tree_payments(tree, pays, types)
        referral = sum(p.values()) - sum(pays.values())
        assert referral <= compute_metrics(tree).referral_weight_total + 1e-9
