"""Public-API integrity: every exported name resolves, everywhere.

Catches export drift (``__all__`` naming something that was renamed or
dropped) across the whole package tree, and asserts the headline objects
stay importable from the top level.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.tree",
    "repro.socialnet",
    "repro.attacks",
    "repro.baselines",
    "repro.workloads",
    "repro.obs",
    "repro.simulation",
    "repro.analysis",
    "repro.quality",
    "repro.service",
    "repro.arena",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ names missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert len(exported) == len(set(exported))


def test_every_module_imports():
    """Import every module in the tree (catches syntax/circular issues in
    modules no test touches directly)."""
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append((info.name, exc))
    assert not failures, failures


def test_headline_api():
    from repro import (  # noqa: F401
        RIT,
        Ask,
        IncentiveTree,
        Job,
        MechanismOutcome,
        Population,
        User,
        paper_scenario,
    )

    assert repro.__version__
