"""Tests for the synthetic social-graph generators."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.socialnet.generators import (
    TWITTER_MEAN_OUT_DEGREE,
    configuration_model,
    forest_fire,
    preferential_attachment,
    random_graph,
    twitter_like,
    watts_strogatz,
)


class TestPreferentialAttachment:
    def test_node_count(self):
        g = preferential_attachment(200, edges_per_node=4, rng=0)
        assert g.num_nodes == 200

    def test_determinism(self):
        a = preferential_attachment(100, 3, rng=7)
        b = preferential_attachment(100, 3, rng=7)
        assert list(a.edges()) == list(b.edges())

    def test_every_node_reachable_from_earlier(self):
        """Every non-first node has at least one in-edge (an inviter)."""
        g = preferential_attachment(150, 3, rng=1)
        for node in range(1, 150):
            assert g.in_degree(node) >= 1

    def test_heavy_tail(self):
        """Hubs exist: the max out-degree dwarfs the mean."""
        g = preferential_attachment(1500, 5, rng=2)
        stats = g.stats()
        assert stats.max_out_degree > 4 * stats.mean_out_degree

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment(0, 3)
        with pytest.raises(ConfigurationError):
            preferential_attachment(10, 0)


class TestRandomGraph:
    def test_exact_edge_count(self):
        g = random_graph(50, 200, rng=0)
        assert g.num_edges == 200

    def test_zero_edges(self):
        assert random_graph(5, 0, rng=0).num_edges == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_graph(1, 0)
        with pytest.raises(ConfigurationError):
            random_graph(3, -1)
        with pytest.raises(ConfigurationError):
            random_graph(3, 7)  # max is 6


class TestWattsStrogatz:
    def test_degree_without_rewiring(self):
        g = watts_strogatz(30, neighbors=4, rewire_prob=0.0, rng=0)
        assert all(g.out_degree(u) == 4 for u in g.nodes())

    def test_rewiring_changes_structure(self):
        a = watts_strogatz(60, 4, 0.0, rng=0)
        b = watts_strogatz(60, 4, 0.5, rng=0)
        assert set(a.edges()) != set(b.edges())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz(4, neighbors=5)
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 2, rewire_prob=1.5)


class TestForestFire:
    def test_node_count_and_reachability(self):
        g = forest_fire(120, rng=3)
        assert g.num_nodes == 120
        for node in range(1, 120):
            assert g.in_degree(node) >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            forest_fire(0)
        with pytest.raises(ConfigurationError):
            forest_fire(10, forward_prob=1.0)


class TestConfigurationModel:
    def test_degrees_close_to_target(self):
        degrees = [3] * 40
        g = configuration_model(degrees, rng=0)
        realized = [g.out_degree(u) for u in g.nodes()]
        assert sum(realized) >= 0.95 * sum(degrees)

    def test_zero_degree_nodes(self):
        g = configuration_model([0, 0, 2], rng=0)
        assert g.out_degree(0) == 0
        assert g.out_degree(2) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            configuration_model([1])
        with pytest.raises(ConfigurationError):
            configuration_model([-1, 2])
        with pytest.raises(ConfigurationError):
            configuration_model([5, 0, 0])  # exceeds n-1


class TestTwitterLike:
    def test_mean_degree_calibration(self):
        g = twitter_like(2000, rng=0)
        assert g.stats().mean_out_degree == pytest.approx(
            TWITTER_MEAN_OUT_DEGREE, rel=0.35
        )

    def test_custom_mean(self):
        g = twitter_like(1000, rng=1, mean_out_degree=6.0)
        assert g.stats().mean_out_degree == pytest.approx(6.0, rel=0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            twitter_like(100, mean_out_degree=0.0)
