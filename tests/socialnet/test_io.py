"""Tests for graph persistence and SNAP loading."""

import pytest

from repro.core.exceptions import GraphError
from repro.socialnet.generators import preferential_attachment
from repro.socialnet.io import load_edges, load_snap_edges, save_edges


class TestSnapLoader:
    def test_follower_edges_reversed_into_recruiting(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment\n100 200\n300 200\n")
        graph, id_map = load_snap_edges(path)
        # 100 follows 200 -> 200 recruits 100.
        assert graph.has_edge(id_map[200], id_map[100])
        assert graph.has_edge(id_map[200], id_map[300])
        assert graph.num_nodes == 3

    def test_ids_densified_in_file_order(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("7 9\n9 7\n42 7\n")
        _, id_map = load_snap_edges(path)
        assert id_map == {7: 0, 9: 1, 42: 2}

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("5 5\n5 6\n")
        graph, _ = load_snap_edges(path)
        assert graph.num_edges == 1

    def test_limit_nodes(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1 2\n3 4\n1 3\n")
        graph, id_map = load_snap_edges(path, limit_nodes=2)
        assert graph.num_nodes == 2
        assert set(id_map) == {1, 2}
        assert graph.num_edges == 1  # only the 1-2 edge survives

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(GraphError):
            load_snap_edges(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            load_snap_edges(path)

    def test_bad_limit_rejected(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1 2\n")
        with pytest.raises(GraphError):
            load_snap_edges(path, limit_nodes=0)


class TestRoundTrip:
    def test_save_load_preserves_graph(self, tmp_path):
        graph = preferential_attachment(60, 3, rng=0)
        path = tmp_path / "graph.txt"
        save_edges(graph, path)
        loaded = load_edges(path)
        assert loaded.num_nodes == graph.num_nodes
        assert set(loaded.edges()) == set(graph.edges())

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n0 1\n\n1 2\n")
        graph = load_edges(path)
        assert graph.num_edges == 2
        assert graph.num_nodes == 3

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphError):
            load_edges(path)
