"""Tests for the directed social graph container."""

import pytest

from repro.core.exceptions import GraphError
from repro.socialnet.graph import SocialGraph


class TestConstruction:
    def test_empty(self):
        g = SocialGraph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph(-1)

    def test_add_edge(self):
        g = SocialGraph(3)
        assert g.add_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_parallel_edge_collapsed(self):
        g = SocialGraph(3)
        assert g.add_edge(0, 1)
        assert not g.add_edge(0, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            SocialGraph(2).add_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = SocialGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 5)
        with pytest.raises(GraphError):
            g.add_edge(-1, 0)

    def test_add_edges_bulk(self):
        g = SocialGraph(4)
        added = g.add_edges([(0, 1), (0, 1), (1, 2), (2, 3)])
        assert added == 3
        assert g.num_edges == 3

    def test_from_edges(self):
        g = SocialGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2


class TestQueries:
    def _graph(self):
        g = SocialGraph(4)
        g.add_edges([(0, 2), (0, 1), (3, 1)])
        return g

    def test_successors_sorted(self):
        assert self._graph().successors(0) == [1, 2]

    def test_predecessors_sorted(self):
        assert self._graph().predecessors(1) == [0, 3]

    def test_degrees(self):
        g = self._graph()
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2
        assert g.out_degree(2) == 0

    def test_edges_iteration(self):
        assert list(self._graph().edges()) == [(0, 1), (0, 2), (3, 1)]

    def test_stats(self):
        stats = self._graph().stats()
        assert stats.num_nodes == 4
        assert stats.num_edges == 3
        assert stats.max_out_degree == 2
        assert stats.mean_out_degree == pytest.approx(0.75)
        assert stats.isolated_nodes == 0

    def test_isolated_nodes_counted(self):
        g = SocialGraph(3)
        g.add_edge(0, 1)
        assert g.stats().isolated_nodes == 1

    def test_out_degree_histogram(self):
        hist = self._graph().out_degree_histogram()
        assert hist == {2: 1, 0: 2, 1: 1}
