"""Documentation guards: the committed docs stay truthful.

* the README quickstart block must execute;
* every file linked from the README exists;
* DESIGN.md's experiment index names real bench targets.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _readme() -> str:
    return (ROOT / "README.md").read_text()


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        text = _readme()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README lost its quickstart code block"
        # The first python block is the quickstart; print() noise is fine.
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        outcome = namespace["outcome"]
        assert outcome.completed

    def test_linked_files_exist(self):
        text = _readme()
        for target in re.findall(r"\]\(([^)#]+)\)", text):
            if target.startswith(("http://", "https://")):
                continue
            assert (ROOT / target).exists(), f"README links missing file {target}"


class TestDesignIndex:
    def test_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for ref in set(re.findall(r"`benchmarks/([\w/]+\.py)", text)):
            assert (ROOT / "benchmarks" / ref).exists(), ref

    def test_paper_check_is_first(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper check" in text.split("##")[0]


class TestExperimentsDoc:
    def test_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Fig. 6(a)", "Fig. 6(b)", "Fig. 7(a)", "Fig. 7(b)",
                       "Fig. 8", "Fig. 9", "Fig. 2", "Fig. 3"):
            assert figure in text, f"EXPERIMENTS.md missing {figure}"
