"""Property-based tests for the quality-aware extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.quality import QualityAwareRIT, QualityProfile
from repro.tree.incentive_tree import ROOT, IncentiveTree


@st.composite
def quality_instances(draw):
    num_types = draw(st.integers(min_value=1, max_value=2))
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=num_types,
            max_size=num_types,
        )
    )
    job = Job(counts)
    num_users = draw(st.integers(min_value=2, max_value=15))
    tree = IncentiveTree()
    asks = {}
    scores = {}
    for uid in range(num_users):
        parent = ROOT if uid == 0 else draw(
            st.sampled_from([ROOT] + list(range(uid)))
        )
        tree.attach(uid, parent)
        asks[uid] = Ask(
            task_type=draw(st.integers(min_value=0, max_value=num_types - 1)),
            capacity=draw(st.integers(min_value=1, max_value=4)),
            value=draw(st.floats(min_value=0.1, max_value=10.0)),
        )
        scores[uid] = draw(st.floats(min_value=0.05, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return job, asks, tree, QualityProfile(scores), seed


class TestQualityInvariants:
    @given(instance=quality_instances())
    @settings(max_examples=80, deadline=None)
    def test_structural_invariants(self, instance):
        job, asks, tree, qualities, seed = instance
        mech = QualityAwareRIT(
            qualities, RIT(round_budget="until-complete")
        )
        out = mech.run(job, asks, tree, np.random.default_rng(seed))
        if not out.completed:
            assert out.payments == {}
            return
        # Coverage and capacity hold exactly as for plain RIT.
        per_type = {tau: 0 for tau in job.types()}
        for uid, x in out.allocation.items():
            assert x <= asks[uid].capacity
            per_type[asks[uid].task_type] += x
        for tau in job.types():
            assert per_type[tau] == job.tasks_of(tau)
        # The virtual-ask IR transfers to real values: the scaled auction
        # payment covers x_j * a_j.
        for uid, x in out.allocation.items():
            assert out.auction_payment_of(uid) >= x * asks[uid].value - 1e-9
        # Referral bound still holds after rescaling.
        assert out.total_payment <= 2 * out.total_auction_payment + 1e-9
        # Effective coverage is consistent with the allocation.
        assert mech.effective_coverage(out) <= out.total_allocated + 1e-9

    @given(instance=quality_instances())
    @settings(max_examples=40, deadline=None)
    def test_unit_quality_reduces_to_plain_rit(self, instance):
        """With all q_j = 1 the extension must coincide with plain RIT."""
        job, asks, tree, _, seed = instance
        ones = QualityProfile({uid: 1.0 for uid in asks})
        aware = QualityAwareRIT(ones, RIT(round_budget="until-complete"))
        plain = RIT(round_budget="until-complete")
        a = aware.run(job, asks, tree, np.random.default_rng(seed))
        p = plain.run(job, asks, tree, np.random.default_rng(seed))
        assert a.allocation == p.allocation
        assert a.completed == p.completed
        for uid in set(a.payments) | set(p.payments):
            assert a.payment_of(uid) == pytest.approx(p.payment_of(uid))
