"""Tests for the quality-aware extension."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, ModelError
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.quality import (
    QualityAwareRIT,
    QualityProfile,
    reliability_qualities,
    uniform_qualities,
)
from repro.tree.incentive_tree import ROOT, IncentiveTree
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


class TestQualityProfile:
    def test_lookup_and_membership(self):
        profile = QualityProfile({1: 0.5, 2: 1.0})
        assert profile[1] == 0.5
        assert 2 in profile
        assert 3 not in profile
        assert len(profile) == 2

    def test_out_of_range_rejected(self):
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(ModelError):
                QualityProfile({1: q})

    def test_missing_score_raises(self):
        with pytest.raises(ModelError):
            QualityProfile({})[7]

    def test_effective_value(self):
        profile = QualityProfile({1: 0.5})
        assert profile.effective_value(1, 3.0) == pytest.approx(6.0)


class TestGenerators:
    @pytest.fixture(scope="class")
    def population(self):
        return UserDistribution(num_types=3).sample(200, rng=0)

    def test_uniform_range(self, population):
        profile = uniform_qualities(population, low=0.4, high=0.9, rng=1)
        assert profile.covers(population)
        for uid in profile:
            assert 0.4 <= profile[uid] <= 0.9

    def test_uniform_validation(self, population):
        with pytest.raises(ConfigurationError):
            uniform_qualities(population, low=0.0)
        with pytest.raises(ConfigurationError):
            uniform_qualities(population, low=0.9, high=0.5)

    def test_reliability_correlates_with_capacity(self, population):
        profile = reliability_qualities(population, rng=2)
        caps = np.array([u.capacity for u in population], dtype=float)
        quals = np.array([profile[u.user_id] for u in population])
        corr = np.corrcoef(caps, quals)[0, 1]
        assert corr > 0.5

    def test_reliability_validation(self, population):
        with pytest.raises(ConfigurationError):
            reliability_qualities(population, floor=1.0)


class TestQualityAwareRIT:
    def _scenario(self):
        job = Job.uniform(3, 12)
        scenario = paper_scenario(
            250, job, rng=5, distribution=UserDistribution(num_types=3)
        )
        qualities = uniform_qualities(scenario.population, rng=6)
        return scenario, qualities

    def test_completes_and_covers(self):
        scenario, qualities = self._scenario()
        mech = QualityAwareRIT(qualities, RIT(round_budget="until-complete"))
        out = mech.run(scenario.job, scenario.truthful_asks(), scenario.tree, rng=7)
        assert out.completed
        assert out.total_allocated == scenario.job.size
        assert mech.effective_coverage(out) > 0

    def test_individual_rationality_transfers(self):
        """Scaled payments still cover true costs under truthful asks."""
        scenario, qualities = self._scenario()
        mech = QualityAwareRIT(qualities, RIT(round_budget="until-complete"))
        asks = scenario.truthful_asks()
        costs = scenario.costs()
        for seed in range(5):
            out = mech.run(scenario.job, asks, scenario.tree, rng=seed)
            if not out.completed:
                continue
            for uid, x in out.allocation.items():
                assert out.auction_payment_of(uid) >= x * costs[uid] - 1e-9
            for uid in out.payments:
                assert out.utility_of(uid, costs[uid]) >= -1e-9

    def test_quality_shifts_selection_statistically(self):
        """Equal asks, unequal quality: high-quality users (lower virtual
        asks) must win clearly more tasks in aggregate.  (CRA's random
        winner subsampling means no per-run dominance — the effect is
        statistical, via the smallest-n_s selection.)"""
        num = 60
        tree = IncentiveTree()
        asks = {}
        for uid in range(num):
            tree.attach(uid, ROOT)
            asks[uid] = Ask(0, 1, 4.0)
        qualities = QualityProfile(
            {uid: (1.0 if uid < num // 2 else 0.4) for uid in range(num)}
        )
        mech = QualityAwareRIT(qualities, RIT(round_budget="until-complete"))
        high = low = 0
        for seed in range(30):
            out = mech.run(Job([10]), asks, tree, rng=seed)
            for uid, x in out.allocation.items():
                if uid < num // 2:
                    high += x
                else:
                    low += x
        assert high > 2 * low, (high, low)

    def test_missing_quality_rejected(self):
        scenario, qualities = self._scenario()
        broken = QualityProfile(
            {uid: qualities[uid] for uid in list(qualities)[:-1]}
        )
        mech = QualityAwareRIT(broken)
        with pytest.raises(ModelError):
            mech.run(scenario.job, scenario.truthful_asks(), scenario.tree)

    def test_referral_bound_still_holds(self):
        scenario, qualities = self._scenario()
        mech = QualityAwareRIT(qualities, RIT(round_budget="until-complete"))
        out = mech.run(scenario.job, scenario.truthful_asks(), scenario.tree, rng=9)
        assert out.total_payment <= 2 * out.total_auction_payment + 1e-9

    def test_void_passes_through(self):
        tree = IncentiveTree()
        tree.attach(0, ROOT)
        asks = {0: Ask(0, 1, 1.0)}
        qualities = QualityProfile({0: 0.8})
        mech = QualityAwareRIT(qualities, RIT(round_budget="until-complete"))
        out = mech.run(Job([5]), asks, tree, rng=0)
        assert not out.completed
        assert out.payments == {}
