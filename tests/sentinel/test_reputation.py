"""Beta-reputation fold (`repro.sentinel.reputation`)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.sentinel.reputation import ReputationBook


class TestReputationBook:
    def test_unobserved_user_has_no_score(self):
        assert ReputationBook().score(7) is None

    def test_posterior_mean_fold(self):
        book = ReputationBook()
        book.observe_epoch(participants=[1, 2], winners=[1])
        assert book.score(1) == (1 + 1) / (1 + 0 + 2)  # α=1, β=0
        assert book.score(2) == (0 + 1) / (0 + 1 + 2)  # α=0, β=1

    def test_scores_stay_in_open_unit_interval(self):
        book = ReputationBook()
        for _ in range(50):
            book.observe_epoch(participants=[1, 2], winners=[1])
        assert 0.0 < book.score(2) < book.score(1) < 1.0

    def test_withdrawal_penalty_is_weighted(self):
        book = ReputationBook(withdrawal_penalty=3)
        book.observe_withdrawal(5)
        assert book.score(5) == (0 + 1) / (0 + 3 + 2)

    def test_bad_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReputationBook(withdrawal_penalty=0)

    def test_fold_is_order_insensitive_per_epoch(self):
        a, b = ReputationBook(), ReputationBook()
        a.observe_epoch(participants=[1, 2, 3], winners=[2])
        b.observe_epoch(participants=[3, 1, 2], winners=[2])
        assert a.to_dict() == b.to_dict()

    def test_summary_folds_in_sorted_id_order(self):
        book = ReputationBook()
        book.observe_epoch(participants=[9, 1, 5], winners=[1])
        summary = book.summary(floor=0.4)
        assert summary["users"] == 3.0
        assert summary["flagged"] == 2.0  # losers sit at 1/3 < 0.4
        assert summary["minimum"] == pytest.approx(1 / 3)

    def test_empty_summary_is_the_prior(self):
        summary = ReputationBook().summary(floor=0.25)
        assert summary == {
            "users": 0.0, "mean": 0.5, "minimum": 0.5, "flagged": 0.0,
        }

    def test_round_trip(self):
        book = ReputationBook(withdrawal_penalty=2)
        book.observe_epoch(participants=[1, 2], winners=[1])
        book.observe_withdrawal(2)
        clone = ReputationBook.from_dict(book.to_dict())
        assert clone.to_dict() == book.to_dict()
        assert clone.score(2) == book.score(2)
