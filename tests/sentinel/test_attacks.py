"""Seeded attack injection (`repro.sentinel.attacks`)."""

import json

import pytest

from repro.core.exceptions import AttackError, ConfigurationError
from repro.core.rng import spawn_seeds
from repro.sentinel.attacks import ATTACK_KINDS, inject_attack
from repro.service.events import (
    AskSubmitted,
    ReferralEdge,
    Withdrawal,
    validate_event,
)
from repro.service.loadgen import build_scenario, scenario_event_stream


def clean_stream(seed=3, users=120, types=3, tasks_per_type=5):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    return scenario, scenario_event_stream(scenario, stream_rng)


class TestInjectAttack:
    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_injected_events_are_valid(self, kind):
        scenario, events = clean_stream()
        rewritten, schedule = inject_attack(
            events, scenario.job, kind=kind, onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        assert len(rewritten) == len(events) + schedule["injected_events"]
        for event in rewritten:
            assert validate_event(event, scenario.job) is None

    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_same_seed_same_injection(self, kind):
        scenario, events = clean_stream()
        a = inject_attack(
            events, scenario.job, kind=kind, onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        b = inject_attack(
            events, scenario.job, kind=kind, onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        assert a == b

    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_schedule_is_json_able(self, kind):
        scenario, events = clean_stream()
        _, schedule = inject_attack(
            events, scenario.job, kind=kind, onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        assert json.loads(json.dumps(schedule)) == schedule
        assert schedule["kind"] == kind
        assert schedule["injection_index"] == 2 * 32

    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_ticks_stay_non_decreasing(self, kind):
        scenario, events = clean_stream()
        rewritten, _ = inject_attack(
            events, scenario.job, kind=kind, onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        ticks = [e.tick for e in rewritten]
        assert ticks == sorted(ticks)

    def test_sybil_identities_never_collide_with_honest_ids(self):
        scenario, events = clean_stream()
        _, schedule = inject_attack(
            events, scenario.job, kind="sybil", onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        honest = {
            e.user_id for e in events if isinstance(e, AskSubmitted)
        }
        assert not set(schedule["identities"]) & honest
        # The whole chain hangs under a user who joined before the onset.
        assert schedule["victim"] in honest

    def test_collusion_cohort_is_fresh_users_under_one_recruiter(self):
        scenario, events = clean_stream()
        rewritten, schedule = inject_attack(
            events, scenario.job, kind="collusion", onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        honest = {
            e.user_id for e in events if isinstance(e, AskSubmitted)
        }
        members = set(schedule["members"])
        assert members and not members & honest
        start = schedule["injection_index"]
        burst = rewritten[start:start + schedule["injected_events"]]
        parents = {
            e.parent_id for e in burst if isinstance(e, ReferralEdge)
        }
        assert parents == {schedule["recruiter"]}
        cartel = [
            e.value for e in burst if isinstance(e, AskSubmitted)
        ]
        assert all(v == schedule["cartel_value"] for v in cartel)
        assert schedule["cartel_value"] > schedule["honest_value"]

    def test_churn_withdraws_only_joined_users(self):
        scenario, events = clean_stream()
        rewritten, schedule = inject_attack(
            events, scenario.job, kind="churn", onset_epoch=2,
            epoch_max_events=32, seed=7,
        )
        joined_before = {
            e.user_id
            for e in events[: schedule["injection_index"]]
            if isinstance(e, AskSubmitted)
        }
        withdrawn = schedule["withdrawn"]
        assert withdrawn and set(withdrawn) <= joined_before
        assert len(set(withdrawn)) == len(withdrawn)
        start = schedule["injection_index"]
        burst = rewritten[start:start + schedule["injected_events"]]
        assert all(isinstance(e, Withdrawal) for e in burst)

    def test_unknown_kind_rejected(self):
        scenario, events = clean_stream(users=30)
        with pytest.raises(ConfigurationError):
            inject_attack(
                events, scenario.job, kind="ddos", onset_epoch=1,
                epoch_max_events=8,
            )

    def test_empty_prefix_rejected(self):
        scenario, events = clean_stream(users=30)
        with pytest.raises(AttackError):
            inject_attack(
                events, scenario.job, kind="sybil", onset_epoch=0,
                epoch_max_events=8,
            )

    def test_onset_past_stream_end_clamps(self):
        scenario, events = clean_stream(users=30)
        rewritten, schedule = inject_attack(
            events, scenario.job, kind="churn", onset_epoch=10_000,
            epoch_max_events=8, seed=1,
        )
        assert schedule["injection_index"] == len(events)
        assert rewritten[: len(events)] == events
