"""The `rit sentinel` empirical gate (`repro.sentinel.harness`)."""

import json

from repro.devtools.bench import _validate_sentinel_section, validate_bench_schema
from repro.sentinel.harness import (
    ATTACK_SCENARIOS,
    CLEAN_SCENARIOS,
    render_sentinel_report,
    run_sentinel_report,
)


class TestPinnedScenarios:
    def test_three_graph_regimes_pinned(self):
        assert [s["graph"] for s in CLEAN_SCENARIOS] == [
            "twitter", "watts-strogatz", "forest-fire",
        ]

    def test_all_attack_kinds_pinned(self):
        assert [s["kind"] for s in ATTACK_SCENARIOS] == [
            "sybil", "collusion", "churn",
        ]


class TestSmokeReport:
    def test_smoke_gate_passes_and_validates(self):
        section, problems = run_sentinel_report(smoke=True)
        assert problems == []
        assert section["detection_within_k"] is True
        assert section["zero_false_positives"] is True
        assert len(section["clean"]) == 1
        assert len(section["attacks"]) == 1
        assert section["clean"][0]["differential_ok"] is True
        assert section["attacks"][0]["kind"] == "sybil"
        assert section["attacks"][0]["epochs_to_detect"] <= section["k"]
        # The section is what lands in BENCH_RIT.json: schema-clean both
        # standalone and mounted on a versioned document.
        assert _validate_sentinel_section(section) == []
        mounted = [
            e
            for e in validate_bench_schema(
                {"schema_version": 1, "sentinel": section}
            )
            if e.startswith("sentinel")
        ]
        assert mounted == []
        assert json.loads(json.dumps(section)) == section

    def test_render_mentions_verdicts(self):
        section, _ = run_sentinel_report(smoke=True)
        text = render_sentinel_report(section)
        assert "detection within K=3: True" in text
        assert "zero false positives: True" in text
        assert "sybil" in text
