"""Streaming detector folds (`repro.sentinel.detectors`)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.sentinel.detectors import (
    DepthAnomalyDetector,
    PriceDriftDetector,
    RollingBaseline,
    SentinelConfig,
    WinRateDriftDetector,
    WithdrawalSpikeDetector,
)

CFG = SentinelConfig(warmup_epochs=2, baseline_window=4)


class TestSentinelConfig:
    def test_defaults_are_valid(self):
        SentinelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup_epochs": 0},
            {"baseline_window": 1, "warmup_epochs": 2},
            {"depth_jump": 0},
            {"win_rate_drift": 0.0},
            {"withdrawal_spike_factor": 1.0},
            {"withdrawal_spike_min": 0},
            {"price_drift_ratio": 0.0},
            {"reputation_penalty": 0},
            {"reputation_floor": 0.0},
            {"admission_floor": 1.5},
            {"alert_ring": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SentinelConfig(**kwargs)


class TestRollingBaseline:
    def test_window_is_bounded(self):
        baseline = RollingBaseline(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            baseline.push(value)
        assert baseline.size == 3
        assert baseline.mean() == pytest.approx(3.0)
        assert baseline.maximum() == 4.0


class TestDepthAnomaly:
    def test_silent_during_warmup(self):
        detector = DepthAnomalyDetector(CFG)
        assert detector.update(0, 100.0) is None  # huge but unwarmed

    def test_jump_past_window_maximum_alerts(self):
        detector = DepthAnomalyDetector(CFG)
        for epoch, depth in enumerate((3.0, 3.0, 4.0)):
            assert detector.update(epoch, depth) is None
        alert = detector.update(3, 4.0 + CFG.depth_jump)
        assert alert is not None
        assert alert["detector"] == "depth_anomaly"
        assert alert["epoch"] == 3
        assert alert["baseline"] == 4.0

    def test_gradual_growth_stays_quiet(self):
        detector = DepthAnomalyDetector(CFG)
        for epoch in range(12):  # one level per epoch: honest BFS growth
            assert detector.update(epoch, float(epoch)) is None


class TestWinRateDrift:
    def test_needs_a_full_window_per_depth(self):
        detector = WinRateDriftDetector(CFG)
        # window=4: three stable epochs are not enough history to judge.
        for epoch in range(3):
            assert detector.update(epoch, {"win_rate/depth1": 0.5}) is None
        assert detector.update(3, {"win_rate/depth1": 1.0}) is None

    def test_drift_past_threshold_alerts_worst_depth(self):
        detector = WinRateDriftDetector(CFG)
        for epoch in range(4):
            gauges = {"win_rate/depth1": 0.5, "win_rate/depth2": 0.4}
            assert detector.update(epoch, gauges) is None
        alert = detector.update(
            4, {"win_rate/depth1": 0.6, "win_rate/depth2": 1.0}
        )
        assert alert is not None
        assert "win_rate/depth2" in alert["detail"]

    def test_vanishing_depths_never_hold_a_baseline(self):
        detector = WinRateDriftDetector(CFG)
        for epoch in range(10):  # a different depth every epoch
            gauges = {f"win_rate/depth{epoch}": 1.0}
            assert detector.update(epoch, gauges) is None


class TestWithdrawalSpike:
    def test_spike_over_quiet_baseline_alerts(self):
        detector = WithdrawalSpikeDetector(CFG)
        for epoch in range(4):
            assert detector.update(epoch, 1) is None
        alert = detector.update(4, CFG.withdrawal_spike_min)
        assert alert is not None
        assert alert["detector"] == "withdrawal_spike"

    def test_small_spike_below_absolute_floor_stays_quiet(self):
        detector = WithdrawalSpikeDetector(CFG)
        for epoch in range(4):
            assert detector.update(epoch, 0) is None
        # 4x a zero mean, but below withdrawal_spike_min.
        assert detector.update(4, CFG.withdrawal_spike_min - 1) is None


class TestPriceDrift:
    def test_price_spike_alerts(self):
        detector = PriceDriftDetector(CFG)
        for epoch in range(4):
            assert detector.update(epoch, 5.0, 10) is None
        alert = detector.update(4, 5.0 * (1.0 + CFG.price_drift_ratio), 10)
        assert alert is not None
        assert alert["detector"] == "price_drift"

    def test_empty_epochs_do_not_poison_the_baseline(self):
        detector = PriceDriftDetector(CFG)
        for epoch in range(4):
            assert detector.update(epoch, 5.0, 10) is None
        for epoch in range(4, 8):  # ask-free epochs: skipped entirely
            assert detector.update(epoch, 0.0, 0) is None
        assert detector.baseline.mean() == pytest.approx(5.0)
