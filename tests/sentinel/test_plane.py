"""The sentinel plane riding a live service (`repro.sentinel.plane`)."""

import asyncio
import json

from repro.core.rit import RIT
from repro.core.rng import spawn_seeds
from repro.core.types import Job
from repro.obs import Tracer, canonical_events
from repro.sentinel.attacks import inject_attack
from repro.sentinel.detectors import SentinelConfig
from repro.sentinel.plane import SentinelPlane
from repro.service import (
    MechanismService,
    MetricsServer,
    ServiceConfig,
    build_scenario,
    canonical_outcome,
    http_get,
    scenario_event_stream,
)
from repro.service.events import AskSubmitted, ReferralEdge
from repro.service.replay import differential_check, replay_outcomes


def small_events(seed=0, users=100, types=3, tasks_per_type=5, attack=None):
    scenario_rng, stream_rng = spawn_seeds(seed, 2)
    scenario = build_scenario(users, types, tasks_per_type, scenario_rng)
    events = scenario_event_stream(scenario, stream_rng)
    if attack is not None:
        # Onset after the detectors' warmup window (like the pinned
        # harness scenarios) so the burst is judged against a baseline.
        events, _ = inject_attack(
            events, scenario.job, kind=attack, onset_epoch=5,
            epoch_max_events=32, seed=seed,
        )
    return scenario, events


def serve(scenario, events, *, sentinel=None, tracer=None, seed=0):
    mechanism = RIT(rng_policy="per-type", round_budget="until-complete")
    service = MechanismService(
        mechanism,
        scenario.job,
        ServiceConfig(seed=seed, epoch_max_events=32),
        sentinel=sentinel,
        tracer=tracer,
    )
    report = service.serve_stream(events)
    return service, report


class TestReadOnlyObserver:
    def test_sentinel_leaves_served_outcomes_bit_identical(self):
        scenario, events = small_events()
        _, plain = serve(scenario, events)
        _, watched = serve(scenario, events, sentinel=SentinelPlane())
        assert [canonical_outcome(o) for o in plain.outcomes()] == [
            canonical_outcome(o) for o in watched.outcomes()
        ]

    def test_differential_holds_with_sentinel_attached(self):
        scenario, events = small_events(attack="sybil")
        service, report = serve(
            scenario, events, sentinel=SentinelPlane(), seed=0
        )
        replayed = replay_outcomes(
            report.consumed,
            scenario.job,
            RIT(rng_policy="per-type", round_budget="until-complete"),
            seed=0,
            policy=service.config.policy(),
        )
        assert differential_check(
            report.outcomes(), [outcome for _, outcome in replayed]
        ) == []


class TestDetection:
    def test_clean_run_raises_no_alerts(self):
        scenario, events = small_events()
        plane = SentinelPlane()
        serve(scenario, events, sentinel=plane)
        assert plane.alerts_total == 0
        assert plane.status()["last_alert"] is None

    def test_sybil_burst_is_flagged(self):
        scenario, events = small_events(attack="sybil")
        plane = SentinelPlane()
        serve(scenario, events, sentinel=plane)
        assert plane.alerts_total > 0
        assert "depth_anomaly" in plane.alert_counts
        assert all(a["epoch"] >= 5 for a in plane.alerts)

    def test_epoch_frames_carry_sentinel_status(self):
        scenario, events = small_events()
        service, _ = serve(scenario, events, sentinel=SentinelPlane())
        frame = service.telemetry.recent_frames()[-1]
        assert frame["sentinel"]["status"]["alerts_total"] == 0
        assert "alerts" in frame["sentinel"]

    def test_reputation_gauges_are_published(self):
        scenario, events = small_events()
        plane = SentinelPlane()
        serve(scenario, events, sentinel=plane)
        assert set(plane.gauges) == {
            "sentinel/reputation_mean",
            "sentinel/reputation_min",
            "sentinel/flagged_users",
        }
        assert 0.0 < plane.gauges["sentinel/reputation_mean"]["value"] < 1.0


class TestCanonicalTrace:
    def test_identical_runs_emit_identical_alert_traces(self):
        streams = []
        for _ in range(2):
            scenario, events = small_events(attack="sybil")
            tracer = Tracer("sentinel-test", seed=0)
            plane = SentinelPlane(tracer=tracer)
            serve(scenario, events, sentinel=plane, tracer=tracer)
            streams.append(canonical_events(tracer.events))
        assert streams[0] == streams[1]
        names = {e.get("name") for e in streams[0]}
        assert "sentinel" in names
        assert "sentinel.alert" in names
        assert any(
            e.get("name") == "sentinel_alerts" for e in streams[0]
        )


class TestAlertsEndpoint:
    @staticmethod
    async def probe(service, path):
        server = MetricsServer(service, port=0)
        await server.start()
        try:
            return await http_get(server.host, server.port, path)
        finally:
            await server.stop()

    def test_alerts_payload_with_sentinel(self):
        scenario, events = small_events(attack="sybil")
        plane = SentinelPlane()
        service, _ = serve(scenario, events, sentinel=plane)
        status, body = asyncio.run(self.probe(service, "/alerts"))
        assert status == 200
        doc = json.loads(body)
        assert doc["enabled"] is True
        assert doc["alerts_total"] == plane.alerts_total
        assert doc["alerts"][0]["detector"] in plane.alert_counts
        assert doc["reputation"]["users"] > 0

    def test_alerts_disabled_without_sentinel(self):
        scenario, events = small_events()
        service, _ = serve(scenario, events)
        status, body = asyncio.run(self.probe(service, "/alerts"))
        assert status == 200
        doc = json.loads(body)
        assert doc == {"enabled": False, "alerts": [], "alerts_total": 0}

    def test_metrics_exposition_carries_sentinel_surface(self):
        scenario, events = small_events(attack="sybil")
        service, _ = serve(scenario, events, sentinel=SentinelPlane())
        status, body = asyncio.run(self.probe(service, "/metrics"))
        assert status == 200
        assert "rit_sentinel_alerts" in body
        assert "rit_sentinel_reputation_mean" in body


class TestAdmissionGate:
    def test_gate_off_by_default(self):
        assert SentinelPlane().admission_gate() is None

    def test_gate_refuses_only_known_bad_asks(self):
        plane = SentinelPlane(SentinelConfig(admission_floor=0.4))
        plane.reputation.observe_withdrawal(1)
        plane.reputation.observe_withdrawal(1)  # score 1/6 < 0.4
        gate = plane.admission_gate()
        bad = AskSubmitted(tick=0, user_id=1, task_type=0, capacity=1, value=1.0)
        fresh = AskSubmitted(tick=0, user_id=2, task_type=0, capacity=1, value=1.0)
        edge = ReferralEdge(tick=0, parent_id=1, child_id=3)
        assert gate(bad) is not None
        assert gate(fresh) is None  # 0.5 prior clears the floor
        assert gate(edge) is None  # referrals always pass
        assert plane.gated == 1

    def test_gated_events_never_reach_the_consumed_stream(self):
        plane = SentinelPlane(SentinelConfig(admission_floor=0.4))
        plane.reputation.observe_withdrawal(1)
        plane.reputation.observe_withdrawal(1)
        job = Job.uniform(1, 2)
        events = [
            AskSubmitted(tick=0, user_id=1, task_type=0, capacity=1, value=1.0),
            AskSubmitted(tick=1, user_id=2, task_type=0, capacity=1, value=1.0),
        ]
        mechanism = RIT(rng_policy="per-type", round_budget="until-complete")
        service = MechanismService(
            mechanism, job, ServiceConfig(seed=0, epoch_max_events=2),
            sentinel=plane,
        )
        report = service.serve_stream(events)
        assert report.gated == 1
        assert [e.user_id for e in report.consumed] == [2]
        replayed = replay_outcomes(
            report.consumed, job,
            RIT(rng_policy="per-type", round_budget="until-complete"),
            seed=0, policy=service.config.policy(),
        )
        assert differential_check(
            report.outcomes(), [outcome for _, outcome in replayed]
        ) == []
