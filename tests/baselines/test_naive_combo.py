"""Tests for the naive auction+tree combination and its §4 failures."""

import pytest

from repro.baselines.auction_only import AuctionOnly
from repro.baselines.naive_combo import NaiveComboMechanism
from repro.baselines.tree_rewards import mit_referral_rewards
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.simulation.experiments import (
    design_challenge_fig2,
    design_challenge_fig3,
)
from repro.tree.incentive_tree import ROOT, IncentiveTree


class TestDesignChallenges:
    def test_fig2_sybil_violation(self):
        """§4-A: the naive combination is NOT sybil-proof."""
        report = design_challenge_fig2()
        assert report.violated
        assert report.deviant_utility > report.honest_utility

    def test_fig3_truthfulness_violation(self):
        """§4-B: the naive combination is NOT truthful."""
        report = design_challenge_fig3()
        assert report.violated
        assert report.honest_utility == pytest.approx(0.0)
        assert report.deviant_utility > 2.0  # paper: 2.41; ours: ~2.31

    def test_reports_are_deterministic(self):
        a = design_challenge_fig2()
        b = design_challenge_fig2()
        assert a.honest_utility == b.honest_utility
        assert a.deviant_utility == b.deviant_utility


class TestNaiveComboMechanism:
    def test_void_auction_passes_through(self):
        tree = IncentiveTree()
        tree.attach(1, ROOT)
        asks = {1: Ask(0, 1, 2.0)}
        out = NaiveComboMechanism().run(Job([5]), asks, tree)
        assert not out.completed
        assert out.payments == {}

    def test_contributions_are_auction_payments(self):
        tree = IncentiveTree()
        tree.attach(1, ROOT)
        tree.attach(2, 1)
        asks = {1: Ask(0, 1, 2.0), 2: Ask(0, 1, 4.0)}
        out = NaiveComboMechanism().run(Job([1]), asks, tree)
        assert out.auction_payments == {1: pytest.approx(4.0)}

    def test_custom_reward_function(self):
        tree = IncentiveTree()
        tree.attach(1, ROOT)
        tree.attach(2, 1)
        asks = {1: Ask(0, 1, 5.0), 2: Ask(0, 1, 1.0)}
        mech = NaiveComboMechanism(reward_function=mit_referral_rewards)
        out = mech.run(Job([1]), asks, tree)
        # node 2 wins at price 5; node 1 earns the gamma share.
        assert out.payment_of(2) == pytest.approx(5.0)
        assert out.payment_of(1) == pytest.approx(2.5)

    def test_name_reflects_inner_auction(self):
        assert "kth-price" in NaiveComboMechanism().name


class TestAuctionOnly:
    def test_payments_equal_auction_payments(self):
        tree = IncentiveTree()
        for i in range(30):
            tree.attach(i, ROOT if i < 5 else i % 5)
        asks = {i: Ask(i % 2, 2, 1.0 + i * 0.3) for i in range(30)}
        mech = AuctionOnly(RIT(round_budget="until-complete"))
        out = mech.run(Job([3, 3]), asks, tree, rng=0)
        assert out.payments == out.auction_payments

    def test_default_inner(self):
        assert isinstance(AuctionOnly().inner, RIT)
