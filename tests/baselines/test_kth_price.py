"""Tests for the k-th lowest price auction baseline."""

import pytest

from repro.baselines.kth_price import KthPriceAuction
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


def star(ids):
    tree = IncentiveTree()
    for i in ids:
        tree.attach(i, ROOT)
    return tree


class TestFig2Numbers:
    """The §4-A walk-through, before the attack."""

    def test_honest_clearing(self):
        asks = {1: Ask(0, 2, 2.0), 2: Ask(0, 1, 3.0), 3: Ask(0, 1, 5.0)}
        out = KthPriceAuction().run(Job([2]), asks, star([1, 2, 3]))
        assert out.completed
        assert out.allocation == {1: 2}
        # "P1 is assigned to complete two tasks, and the auction payment
        # is 2 × 3 = 6."
        assert out.payment_of(1) == pytest.approx(6.0)

    def test_post_attack_clearing(self):
        """After the split, P11 and P2 each win one task at price 5."""
        asks = {
            2: Ask(0, 1, 3.0),
            3: Ask(0, 1, 5.0),
            4: Ask(0, 1, 2.0),   # identity P11
            5: Ask(0, 1, 5.0),   # identity P12
        }
        out = KthPriceAuction().run(Job([2]), asks, star([2, 3, 4, 5]))
        assert out.allocation == {4: 1, 2: 1}
        assert out.payment_of(4) == pytest.approx(5.0)
        assert out.payment_of(2) == pytest.approx(5.0)


class TestFig3Numbers:
    """The §4-B third-price setting."""

    def test_honest_p1_wins_nothing(self):
        asks = {
            1: Ask(0, 1, 5.0),
            2: Ask(0, 1, 4.0),
            3: Ask(0, 1, 5.0),
            4: Ask(0, 1, 4.0),
        }
        out = KthPriceAuction().run(Job([2]), asks, star([1, 2, 3, 4]))
        assert out.payment_of(1) == 0.0
        assert out.allocation == {2: 1, 4: 1}
        assert out.payment_of(2) == pytest.approx(5.0)

    def test_underbidding_p1_wins_at_4(self):
        asks = {
            1: Ask(0, 1, 4.0 - 1e-9),
            2: Ask(0, 1, 4.0),
            3: Ask(0, 1, 5.0),
            4: Ask(0, 1, 4.0),
        }
        out = KthPriceAuction().run(Job([2]), asks, star([1, 2, 3, 4]))
        assert out.tasks_of(1) == 1
        assert out.payment_of(1) == pytest.approx(4.0)


class TestGeneralBehaviour:
    def test_multi_type_jobs(self):
        asks = {
            1: Ask(0, 1, 1.0),
            2: Ask(1, 2, 2.0),
            3: Ask(0, 1, 3.0),
            4: Ask(1, 1, 4.0),
        }
        out = KthPriceAuction().run(Job([1, 2]), asks, star([1, 2, 3, 4]))
        assert out.completed
        assert out.tasks_of(1) == 1
        assert out.tasks_of(2) == 2
        assert out.payment_of(1) == pytest.approx(3.0)
        assert out.payment_of(2) == pytest.approx(2 * 4.0)

    def test_supply_exactly_q_prices_at_highest_winner(self):
        asks = {1: Ask(0, 1, 2.0), 2: Ask(0, 1, 7.0)}
        out = KthPriceAuction().run(Job([2]), asks, star([1, 2]))
        assert out.completed
        assert out.payment_of(1) == pytest.approx(7.0)
        assert out.payment_of(2) == pytest.approx(7.0)

    def test_insufficient_supply_voids_by_default(self):
        asks = {1: Ask(0, 1, 2.0)}
        out = KthPriceAuction().run(Job([3]), asks, star([1]))
        assert not out.completed
        assert out.allocation == {}

    def test_partial_fill_when_completion_not_required(self):
        asks = {1: Ask(0, 1, 2.0)}
        mech = KthPriceAuction(require_completion=False)
        out = mech.run(Job([3, 1]), asks, star([1]))
        assert not out.completed
        assert out.tasks_of(1) == 1

    def test_empty_type_skipped(self):
        asks = {1: Ask(1, 1, 2.0)}
        out = KthPriceAuction().run(Job([0, 1]), asks, star([1]))
        assert out.completed
        assert out.tasks_of(1) == 1

    def test_ties_broken_by_profile_order(self):
        asks = {3: Ask(0, 1, 2.0), 1: Ask(0, 1, 2.0), 2: Ask(0, 1, 2.0)}
        out = KthPriceAuction().run(Job([1]), asks, star([1, 2, 3]))
        assert out.tasks_of(3) == 1  # first in the profile wins the tie

    def test_deterministic_regardless_of_rng(self):
        asks = {1: Ask(0, 1, 1.0), 2: Ask(0, 1, 2.0)}
        a = KthPriceAuction().run(Job([1]), asks, star([1, 2]), rng=0)
        b = KthPriceAuction().run(Job([1]), asks, star([1, 2]), rng=999)
        assert a.payments == b.payments
