"""Tests for the baseline tree reward rules (MIT/DARPA, Lv–Moscibroda,
Pachira-style)."""

import math

import pytest

from repro.baselines.pachira import pachira_style_rewards
from repro.baselines.tree_rewards import (
    lv_moscibroda_rewards,
    mit_referral_rewards,
)
from repro.core.exceptions import ConfigurationError
from repro.tree.incentive_tree import ROOT, IncentiveTree


def make_tree(edges):
    tree = IncentiveTree()
    for parent, child in edges:
        tree.attach(child, parent)
    return tree


class TestMITReferral:
    def test_darpa_balloon_story(self):
        """§1: finder $2000, inviter $1000, inviter's inviter $500."""
        # root -> carol -> alice -> bob (the balloon finder).
        tree = make_tree([(ROOT, 1), (1, 2), (2, 3)])
        rewards = mit_referral_rewards(tree, {3: 2000.0})
        assert rewards[3] == pytest.approx(2000.0)
        assert rewards[2] == pytest.approx(1000.0)
        assert rewards[1] == pytest.approx(500.0)

    def test_bob_sybil_attack_gains(self):
        """§1's counterexample: Bob splits into Bob1/Bob2 and collects
        $3000 while Alice drops from $1000 to $500."""
        honest = make_tree([(ROOT, 1), (1, 2)])  # alice=1, bob=2
        h = mit_referral_rewards(honest, {2: 2000.0})
        attacked = make_tree([(ROOT, 1), (1, 3), (3, 4)])  # bob2=3, bob1=4
        a = mit_referral_rewards(attacked, {4: 2000.0})
        assert h[2] == pytest.approx(2000.0)
        assert a[4] + a[3] == pytest.approx(3000.0)  # Bob's identities
        assert a[1] == pytest.approx(500.0)          # Alice loses
        assert a[4] + a[3] > h[2]                    # NOT sybil-proof

    def test_multiple_contributors_accumulate(self):
        tree = make_tree([(ROOT, 1), (1, 2), (1, 3)])
        rewards = mit_referral_rewards(tree, {2: 10.0, 3: 20.0})
        assert rewards[1] == pytest.approx(0.5 * 10 + 0.5 * 20)

    def test_gamma_validation(self):
        tree = make_tree([(ROOT, 1)])
        for gamma in (0.0, 1.0, -0.3):
            with pytest.raises(ConfigurationError):
                mit_referral_rewards(tree, {1: 1.0}, gamma=gamma)

    def test_custom_gamma(self):
        tree = make_tree([(ROOT, 1), (1, 2)])
        rewards = mit_referral_rewards(tree, {2: 9.0}, gamma=1.0 / 3.0)
        assert rewards[1] == pytest.approx(3.0)


class TestLvMoscibroda:
    def test_zero_contribution_earns_zero(self):
        tree = make_tree([(ROOT, 1), (ROOT, 2)])
        rewards = lv_moscibroda_rewards(tree, {2: 5.0})
        assert rewards[1] == 0.0

    def test_formula_on_shared_pot(self):
        tree = make_tree([(ROOT, 1), (ROOT, 2)])
        rewards = lv_moscibroda_rewards(tree, {1: 4.0, 2: 4.0})
        expected = 2 * 4.0 + math.log(1 - 4.0 / 8.0)
        assert rewards[1] == pytest.approx(expected)
        assert rewards[2] == pytest.approx(expected)

    def test_sole_contributor_is_clamped_finite(self):
        tree = make_tree([(ROOT, 1)])
        rewards = lv_moscibroda_rewards(tree, {1: 6.0})
        assert rewards[1] == pytest.approx(12.0 + math.log(1.0 / 7.0))
        assert math.isfinite(rewards[1])

    def test_all_zero_contributions(self):
        tree = make_tree([(ROOT, 1), (ROOT, 2)])
        assert lv_moscibroda_rewards(tree, {}) == {1: 0.0, 2: 0.0}

    def test_sole_contributor_clamp_pins_s_equals_payment(self):
        """Normalizer edge case ``S == p^A_j``: the raw log argument is
        exactly 0, the clamp floor ``1/(1+S)`` takes over, and the reward
        is ``2c - ln(1+c)`` — finite for any contribution size."""
        for c in (0.25, 1.0, 6.0, 1e6):
            tree = make_tree([(ROOT, 1)])
            rewards = lv_moscibroda_rewards(tree, {1: c})
            assert rewards[1] == pytest.approx(2.0 * c - math.log(1.0 + c))
            assert math.isfinite(rewards[1])

    def test_negative_contribution_raises(self):
        """Negative contributions are a caller bug, not a silent NaN."""
        tree = make_tree([(ROOT, 1), (ROOT, 2)])
        with pytest.raises(ConfigurationError, match="non-negative"):
            lv_moscibroda_rewards(tree, {1: 4.0, 2: -1.0})


class TestPachiraStyle:
    def test_marginal_value_shape(self):
        # root -> 1 -> 2; node 1's reward is the marginal value of its own
        # contribution on top of node 2's subtree.
        tree = make_tree([(ROOT, 1), (1, 2)])
        rewards = pachira_style_rewards(
            tree, {1: 10.0, 2: 10.0}, prize=100.0, scale=10.0
        )
        f = lambda x: 1 - 2 ** (-x / 10.0)
        assert rewards[2] == pytest.approx(100 * (f(10) - f(0)))
        assert rewards[1] == pytest.approx(100 * (f(20) - f(10)))
        # Concavity: the node stacked on a contributing subtree earns less
        # for the same own contribution.
        assert rewards[1] < rewards[2]

    def test_rewards_bounded_by_prize(self):
        tree = make_tree([(ROOT, 1), (1, 2), (2, 3)])
        rewards = pachira_style_rewards(
            tree, {1: 50.0, 2: 50.0, 3: 50.0}, prize=100.0, scale=5.0
        )
        assert sum(rewards.values()) <= 100.0 + 1e-9

    def test_chain_split_never_gains(self):
        """Concavity -> splitting a contribution across a chain of
        identities cannot beat keeping it whole."""
        whole = make_tree([(ROOT, 1)])
        w = pachira_style_rewards(whole, {1: 20.0}, prize=100.0, scale=10.0)
        split = make_tree([(ROOT, 1), (1, 2)])
        s = pachira_style_rewards(split, {1: 10.0, 2: 10.0}, prize=100.0, scale=10.0)
        assert s[1] + s[2] <= w[1] + 1e-9

    def test_validation(self):
        tree = make_tree([(ROOT, 1)])
        with pytest.raises(ConfigurationError):
            pachira_style_rewards(tree, {1: 1.0}, prize=0.0)
        with pytest.raises(ConfigurationError):
            pachira_style_rewards(tree, {1: 1.0}, scale=0.0)

    def test_negative_contributions_ignored(self):
        tree = make_tree([(ROOT, 1)])
        rewards = pachira_style_rewards(tree, {1: -5.0})
        assert rewards[1] == 0.0
