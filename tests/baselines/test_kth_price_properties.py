"""Property-based tests for the k-th lowest price auction.

[31]'s classical result: with unit-capacity bidders the (q+1)-st price
auction is dominant-strategy truthful.  Hypothesis searches for
counterexamples; it also confirms the multi-unit failure mode (the §4
price-manipulation channel) exists, so the baseline is faithful on both
sides of the boundary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kth_price import KthPriceAuction
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


def star(ids):
    tree = IncentiveTree()
    for i in ids:
        tree.attach(i, ROOT)
    return tree


@st.composite
def unit_instances(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    costs = [
        draw(st.floats(min_value=0.1, max_value=10.0)) for _ in range(n)
    ]
    q = draw(st.integers(min_value=1, max_value=n - 1))
    bidder = draw(st.integers(min_value=0, max_value=n - 1))
    report = draw(st.floats(min_value=0.05, max_value=12.0))
    return costs, q, bidder, report


class TestUnitBidderTruthfulness:
    @given(instance=unit_instances())
    @settings(max_examples=300, deadline=None)
    def test_no_profitable_unit_misreport(self, instance):
        """For unit-capacity bidders, no single misreport beats truth."""
        costs, q, bidder, report = instance
        mech = KthPriceAuction(require_completion=False)
        job = Job([q])
        tree = star(range(len(costs)))

        def utility(asks):
            out = mech.run(job, asks, tree)
            return out.utility_of(bidder, costs[bidder])

        truthful = {i: Ask(0, 1, c) for i, c in enumerate(costs)}
        deviant = dict(truthful)
        deviant[bidder] = Ask(0, 1, report)
        assert utility(deviant) <= utility(truthful) + 1e-9

    @given(instance=unit_instances())
    @settings(max_examples=150, deadline=None)
    def test_individual_rationality(self, instance):
        costs, q, bidder, _ = instance
        mech = KthPriceAuction(require_completion=False)
        out = mech.run(
            Job([q]),
            {i: Ask(0, 1, c) for i, c in enumerate(costs)},
            star(range(len(costs))),
        )
        for i, c in enumerate(costs):
            assert out.utility_of(i, c) >= -1e-9


class TestMultiUnitFailure:
    def test_the_fig2_channel_is_reachable(self):
        """The multi-unit bidder CAN profit by withholding supply at a
        higher price — the §4-A failure RIT exists to close.  (Keeping
        this as a test documents that the baseline reproduces the paper's
        premise, not just its happy path.)"""
        mech = KthPriceAuction()
        job = Job([2])
        tree = star([1, 2, 3])
        truthful = {1: Ask(0, 2, 2.0), 2: Ask(0, 1, 3.0), 3: Ask(0, 1, 5.0)}
        honest = mech.run(job, truthful, tree).utility_of(1, 2.0)
        # withhold one unit and overbid it via the claimed capacity:
        deviant = dict(truthful)
        deviant[1] = Ask(0, 1, 2.0)  # only one unit offered
        out = mech.run(job, deviant, tree)
        lying = out.utility_of(1, 2.0)
        # price rises from 3 to 5; one task at 5 beats two at 3.
        assert lying > honest
