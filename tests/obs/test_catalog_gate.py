"""Catalog-drift self-gate: emitters, docs and catalogs cannot diverge.

Three invariants:

* every counter name passed to ``.count("...")`` anywhere in the source
  and test trees resolves through ``describe_counter`` — an emitter
  cannot invent a counter the schema validator would reject;
* every metric name passed to ``.observe("...")`` resolves through
  ``describe_metric``;
* the counter table committed in ``docs/observability.md`` equals the
  generated ``catalog_markdown_table()`` output exactly.
"""

import re
from pathlib import Path

from repro.obs.catalog import catalog_markdown_table, describe_counter
from repro.obs.metrics import describe_metric

REPO = Path(__file__).resolve().parents[2]

#: ``.count("name")`` / ``.count(f"prefix/{x}")`` call sites.  Plain
#: ``str.count``/``list.count`` calls are filtered out by requiring an
#: underscore or slash in the literal (every cataloged name has one).
_COUNT_RE = re.compile(r'\.count\(\s*(f?)"([^"]+)"')
_OBSERVE_RE = re.compile(r'\.observe\(\s*(f?)"([^"]+)"')


def name_literals(pattern):
    """{(path, line, name)} for every matching call site under src+tests."""
    hits = []
    for root in ("src", "tests", "benchmarks", "examples"):
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "fixtures" in path.parts:
                continue  # lint fixtures deliberately contain bad code
            if path.name == Path(__file__).name:
                continue  # this file's own regex examples
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                for is_fstring, name in pattern.findall(line):
                    if is_fstring:
                        name = name.split("{", 1)[0]  # keep the prefix
                    if "_" not in name and "/" not in name:
                        continue  # str.count("x") etc.
                    hits.append((str(path.relative_to(REPO)), lineno, name))
    return hits


class TestCatalogGate:
    def test_every_emitted_counter_is_cataloged(self):
        hits = name_literals(_COUNT_RE)
        assert hits, "scanner found no .count() call sites — regex rotted?"
        uncataloged = [
            hit for hit in hits if describe_counter(hit[2]) is None
        ]
        assert not uncataloged, (
            "counter names outside COUNTER_CATALOG/COUNTER_FAMILIES: "
            f"{uncataloged}"
        )

    def test_every_observed_metric_is_cataloged(self):
        hits = name_literals(_OBSERVE_RE)
        assert hits, "scanner found no .observe() call sites — regex rotted?"
        uncataloged = [
            hit for hit in hits if describe_metric(hit[2]) is None
        ]
        assert not uncataloged, (
            "metric names outside METRIC_CATALOG/METRIC_FAMILIES: "
            f"{uncataloged}"
        )

    def test_docs_table_matches_generated(self):
        doc = (REPO / "docs" / "observability.md").read_text()
        begin = "<!-- COUNTER_CATALOG:begin -->"
        end = "<!-- COUNTER_CATALOG:end -->"
        assert begin in doc and end in doc, "catalog markers missing from doc"
        embedded = doc.split(begin, 1)[1].split(end, 1)[0].strip()
        assert embedded == catalog_markdown_table(), (
            "docs/observability.md counter table drifted from "
            "catalog_markdown_table(); regenerate the block between the "
            "COUNTER_CATALOG markers"
        )

    def test_table_covers_whole_catalog(self):
        table = catalog_markdown_table()
        from repro.obs.catalog import COUNTER_CATALOG, COUNTER_FAMILIES

        for name in COUNTER_CATALOG:
            assert f"`{name}`" in table
        for prefix in COUNTER_FAMILIES:
            assert f"`{prefix}*`" in table
