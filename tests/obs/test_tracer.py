"""Unit tests for the tracer, the event model, and the counter catalog."""

import pytest

from repro.obs import (
    COUNTER_CATALOG,
    NULL_TRACER,
    SPAN_LEVELS,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    canonical_events,
    config_hash,
    describe_counter,
    read_jsonl,
)


class TestNullTracer:
    def test_is_structurally_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.depth == 0
        assert NULL_TRACER.begin("run") == -1
        NULL_TRACER.end(-1)  # no-op, never raises
        NULL_TRACER.count("cra_rounds", 3)
        assert NULL_TRACER.snapshot() == {}
        assert NULL_TRACER.value("cra_rounds", default=7) == 7

    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("mechanism", users=10)
        b = NULL_TRACER.run_span()
        assert a is b
        with a:
            pass

    def test_clock_is_callable(self):
        t0 = NULL_TRACER.clock()
        assert NULL_TRACER.clock() >= t0

    def test_recording_tracer_is_a_null_tracer(self):
        assert isinstance(Tracer("x"), NullTracer)


class TestSpans:
    def test_header_is_first_event(self):
        tracer = Tracer("run-1", seed=3, config={"users": 10})
        header = tracer.events[0]
        assert header["ev"] == "trace"
        assert header["run_id"] == "run-1"
        assert header["seed"] == 3
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["config_hash"] == config_hash({"users": 10})

    def test_nesting_and_parents(self):
        tracer = Tracer("run")
        outer = tracer.begin("run")
        inner = tracer.begin("mechanism")
        assert tracer.depth == 2
        tracer.end(inner)
        tracer.end(outer)
        starts = [e for e in tracer.events if e["ev"] == "span_start"]
        assert [s["parent"] for s in starts] == [None, outer]

    def test_out_of_order_end_raises(self):
        tracer = Tracer("run")
        outer = tracer.begin("run")
        tracer.begin("mechanism")
        with pytest.raises(ValueError):
            tracer.end(outer)

    def test_end_without_open_span_raises(self):
        with pytest.raises(ValueError):
            Tracer("run").end(0)

    def test_run_span_only_opens_at_depth_zero(self):
        tracer = Tracer("run")
        with tracer.run_span(kind="outer"):
            assert tracer.depth == 1
            with tracer.run_span(kind="nested"):  # no-op at depth > 0
                assert tracer.depth == 1
        names = [e["name"] for e in tracer.events if e["ev"] == "span_start"]
        assert names == ["run"]


class TestCounters:
    def test_running_totals_and_snapshot_order(self):
        tracer = Tracer("run")
        tracer.count("cra_rounds")
        tracer.count("winners_selected", 5)
        tracer.count("cra_rounds", 2)
        assert tracer.value("cra_rounds") == 3
        snap = tracer.snapshot()
        assert list(snap) == ["cra_rounds", "winners_selected"]
        assert snap["cra_rounds"] == {"value": 3, "unit": "count"}
        values = [
            e["value"] for e in tracer.events
            if e["ev"] == "counter" and e["name"] == "cra_rounds"
        ]
        assert values == [1, 3]

    def test_unit_is_fixed_at_first_use(self):
        tracer = Tracer("run")
        tracer.count("stage_seconds/sample", 0.5, unit="seconds")
        with pytest.raises(ValueError):
            tracer.count("stage_seconds/sample", 1)

    def test_bytes_counters_keep_integer_totals(self):
        tracer = Tracer("run")
        tracer.count("columnar_store_bytes", 1_024, unit="bytes")
        tracer.count("columnar_store_bytes", 2_048, unit="bytes")
        total = tracer.value("columnar_store_bytes")
        assert total == 3_072
        assert isinstance(total, int) and not isinstance(total, bool)
        snap = tracer.snapshot()
        assert snap["columnar_store_bytes"] == {
            "value": 3_072,
            "unit": "bytes",
        }
        for event in tracer.events:
            if event["ev"] == "counter":
                assert isinstance(event["value"], int)
                assert isinstance(event["delta"], int)

    def test_owning_span_recorded(self):
        tracer = Tracer("run")
        with tracer.span("cra") as sid:
            tracer.count("cra_rounds")
        event = [e for e in tracer.events if e["ev"] == "counter"][0]
        assert event["span"] == sid


class TestCanonicalAndRoundtrip:
    def test_canonical_strips_time_and_measured_durations(self):
        tracer = Tracer("run")
        tracer.count("cra_rounds")
        tracer.count("stage_seconds/sample", 0.25, unit="seconds")
        canon = canonical_events(tracer.events)
        assert all("t" not in e for e in canon)
        count = [e for e in canon if e.get("name") == "cra_rounds"][0]
        seconds = [e for e in canon if e.get("name") == "stage_seconds/sample"][0]
        assert count["value"] == 1
        assert "value" not in seconds and "delta" not in seconds
        assert seconds["unit"] == "seconds"

    def test_bytes_counters_survive_canonicalization(self):
        # Store footprints are deterministic (pure array sizes), so the
        # canonical differential stream keeps them — unlike seconds.
        tracer = Tracer("run")
        tracer.count("columnar_store_bytes", 4_096, unit="bytes")
        canon = canonical_events(tracer.events)
        event = [
            e for e in canon if e.get("name") == "columnar_store_bytes"
        ][0]
        assert event["value"] == 4_096
        assert event["delta"] == 4_096
        assert event["unit"] == "bytes"

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer("run", seed=1, config={"k": [1, 2]})
        with tracer.run_span():
            tracer.count("cra_rounds")
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        assert read_jsonl(path) == tracer.events


class TestAbsorb:
    def _child(self, rep):
        child = Tracer(f"rep-{rep}", seed=rep, config={"rep": rep})
        with child.span("rep", rep=rep):
            with child.span("mechanism"):
                child.count("cra_rounds", 2)
        return child

    def test_ids_remap_and_roots_reparent(self):
        parent = Tracer("merge")
        with parent.run_span():
            run_id = 0
            parent.absorb(self._child(0).events, rep=0, worker=0)
            parent.absorb(self._child(1).events, rep=1, worker=1)
        starts = [e for e in parent.events if e["ev"] == "span_start"]
        ids = [s["id"] for s in starts]
        assert len(ids) == len(set(ids)), "absorbed span ids must not collide"
        rep_spans = [s for s in starts if s["name"] == "rep"]
        assert [s["parent"] for s in rep_spans] == [run_id, run_id]

    def test_counter_values_rewritten_to_merged_totals(self):
        parent = Tracer("merge")
        with parent.run_span():
            parent.absorb(self._child(0).events, rep=0, worker=0)
            parent.absorb(self._child(1).events, rep=1, worker=1)
        values = [
            e["value"] for e in parent.events
            if e["ev"] == "counter" and e["name"] == "cra_rounds"
        ]
        assert values == [2, 4]
        assert parent.value("cra_rounds") == 4

    def test_headers_dropped_and_events_tagged(self):
        parent = Tracer("merge")
        with parent.run_span():
            parent.absorb(self._child(3).events, rep=3, worker=1)
        assert [e for e in parent.events if e["ev"] == "trace"] == [
            parent.events[0]
        ]
        absorbed = [e for e in parent.events if "rep" in e]
        assert absorbed and all(
            e["rep"] == 3 and e["w"] == 1 for e in absorbed
        )
        assert [e["i"] for e in parent.events] == list(
            range(len(parent.events))
        )


class TestCatalog:
    def test_span_levels_are_the_documented_hierarchy(self):
        assert SPAN_LEVELS == ("run", "mechanism", "cra", "round")

    def test_catalog_entries_are_unit_description_pairs(self):
        for name, (unit, description) in COUNTER_CATALOG.items():
            assert unit in ("count", "seconds", "bytes"), name
            assert description, name

    def test_columnar_store_footprint_is_a_bytes_counter(self):
        unit, _ = COUNTER_CATALOG["columnar_store_bytes"]
        assert unit == "bytes"

    def test_family_lookup(self):
        assert describe_counter("figure_seconds/fig6a") is not None
        assert describe_counter("stage_seconds/sample") is not None
        assert describe_counter("not_a_counter") is None
