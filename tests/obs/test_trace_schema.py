"""Tests for the trace JSONL schema validator (``repro.devtools.trace_schema``)."""

import copy

import pytest

from repro.core.rit import RIT
from repro.core.types import Job
from repro.devtools.trace_schema import (
    check_coverage,
    trace_coverage,
    validate_trace_events,
    validate_trace_file,
)
from repro.obs import Tracer
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


def _traced_run(seed=0):
    tracer = Tracer("test", seed=seed, config={"users": 120})
    job = Job.uniform(3, 8)
    scenario = paper_scenario(
        120, job, seed, distribution=UserDistribution(num_types=3)
    )
    mech = RIT(round_budget="until-complete", tracer=tracer)
    mech.run(job, scenario.truthful_asks(), scenario.tree, seed)
    return tracer


@pytest.fixture(scope="module")
def events():
    return _traced_run().events


class TestValidStreams:
    def test_real_run_is_valid(self, events):
        assert validate_trace_events(events) == []

    def test_real_run_passes_smoke_gate(self, events):
        assert check_coverage(events) == []

    def test_handbuilt_stream_is_valid(self):
        tracer = Tracer("tiny", seed=1, config={})
        with tracer.run_span():
            with tracer.span("mechanism"):
                tracer.count("cra_rounds")
        assert validate_trace_events(tracer.events) == []

    def test_columnar_run_emits_a_valid_bytes_counter(self):
        tracer = Tracer("col", seed=0, config={"users": 60})
        job = Job.uniform(2, 5)
        scenario = paper_scenario(
            60, job, 0, distribution=UserDistribution(num_types=2)
        )
        mech = RIT(
            round_budget="until-complete", engine="columnar", tracer=tracer
        )
        mech.run(job, scenario.truthful_asks(), scenario.tree, 0)
        assert validate_trace_events(tracer.events) == []
        store_events = [
            e
            for e in tracer.events
            if e.get("name") == "columnar_store_bytes"
        ]
        assert store_events
        for event in store_events:
            assert event["unit"] == "bytes"
            assert isinstance(event["value"], int)
            assert event["value"] > 0

    def test_file_roundtrip_is_valid(self, events, tmp_path):
        from repro.obs import write_jsonl

        path = str(tmp_path / "t.jsonl")
        write_jsonl(events, path)
        assert validate_trace_file(path) == []

    def test_unreadable_file_reports(self, tmp_path):
        problems = validate_trace_file(str(tmp_path / "missing.jsonl"))
        assert problems and "cannot read" in problems[0]


class TestCorruptions:
    """Each corruption of a valid stream must be caught."""

    def _mutated(self, events, mutate):
        mutated = [copy.deepcopy(e) for e in events]
        mutate(mutated)
        return validate_trace_events(mutated)

    def test_empty_stream(self):
        assert validate_trace_events([]) != []

    def test_missing_header(self, events):
        assert self._mutated(events, lambda ev: ev.pop(0))

    def test_wrong_schema_version(self, events):
        def mutate(ev):
            ev[0]["schema_version"] = 999

        assert any("schema_version" in p for p in self._mutated(events, mutate))

    def test_gap_in_indices(self, events):
        def mutate(ev):
            ev[3]["i"] = 99

        assert self._mutated(events, mutate)

    def test_unknown_event_kind(self, events):
        def mutate(ev):
            ev[2]["ev"] = "mystery"

        assert any("unknown event kind" in p for p in self._mutated(events, mutate))

    def test_unclosed_span(self, events):
        def mutate(ev):
            ends = [k for k, e in enumerate(ev) if e["ev"] == "span_end"]
            del ev[ends[-1]]
            for k, e in enumerate(ev):
                e["i"] = k

        assert any("unclosed" in p for p in self._mutated(events, mutate))

    def test_non_lifo_close(self):
        tracer = Tracer("x")
        a = tracer.begin("run")
        tracer.begin("mechanism")
        events = [copy.deepcopy(e) for e in tracer.events]
        events.append(
            {"i": len(events), "ev": "span_end", "t": 0.0, "id": a, "name": "run"}
        )
        assert any("LIFO" in p for p in validate_trace_events(events))

    def test_uncataloged_counter(self, events):
        def mutate(ev):
            counters = [e for e in ev if e["ev"] == "counter"]
            counters[0]["name"] = "made_up_counter"

        assert any("not cataloged" in p for p in self._mutated(events, mutate))

    def test_inconsistent_running_value(self, events):
        def mutate(ev):
            counters = [
                e for e in ev if e["ev"] == "counter" and e["unit"] == "count"
            ]
            counters[0]["value"] = counters[0]["value"] + 7

        assert any("running" in p for p in self._mutated(events, mutate))

    def _bytes_stream(self):
        tracer = Tracer("b", seed=0, config={})
        with tracer.run_span():
            with tracer.span("mechanism"):
                tracer.count("columnar_store_bytes", 512, unit="bytes")
        return [copy.deepcopy(e) for e in tracer.events]

    def test_float_bytes_delta_flagged(self):
        events = self._bytes_stream()
        target = [
            e for e in events if e.get("name") == "columnar_store_bytes"
        ][0]
        target["delta"] = 512.0
        target["value"] = 512.0
        assert any(
            "must be ints" in p for p in validate_trace_events(events)
        )

    def test_bytes_running_value_checked(self):
        events = self._bytes_stream()
        target = [
            e for e in events if e.get("name") == "columnar_store_bytes"
        ][0]
        target["value"] = target["value"] + 7
        assert any("running" in p for p in validate_trace_events(events))

    def test_negative_merge_tag(self, events):
        def mutate(ev):
            ev[1]["rep"] = -1

        assert any("'rep'" in p for p in self._mutated(events, mutate))


class TestCoverage:
    def test_coverage_reports_spans_and_counters(self, events):
        seen = trace_coverage(events)
        assert {"run", "mechanism", "cra", "round"} <= seen["span_names"]
        count_units = [
            name for name, unit in seen["counters"].items() if unit == "count"
        ]
        assert len(count_units) >= 6

    def test_gate_fails_without_round_spans(self):
        tracer = Tracer("tiny", seed=1, config={})
        with tracer.run_span():
            tracer.count("cra_rounds")
        problems = check_coverage(tracer.events)
        assert any("span levels" in p for p in problems)
        assert any("count-unit counters" in p for p in problems)
