"""OpenMetrics exposition + strict round-trip parser (`repro.obs.openmetrics`)."""

import pytest

from repro.obs.metrics import new_histogram
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    format_openmetrics,
    metric_family_name,
    parse_openmetrics,
)


def sample_histograms():
    latency = new_histogram("shard_run_seconds")
    for v in (0.001, 0.01, 0.01, 0.3, 70.0):  # 70 s lands in +Inf
        latency.observe(v)
    depth = new_histogram("ingest_queue_depth")
    for v in (1, 2, 2, 900):
        depth.observe(v)
    return {"shard_run_seconds": latency, "ingest_queue_depth": depth}


class TestFamilyName:
    def test_prefix_and_cleaning(self):
        assert metric_family_name("cra_rounds", "count") == "rit_cra_rounds"
        assert (
            metric_family_name("stage_seconds/sample", "seconds")
            == "rit_stage_seconds_sample_seconds"
        )

    def test_unit_suffix_not_doubled(self):
        assert (
            metric_family_name("ingest_admit_seconds", "seconds")
            == "rit_ingest_admit_seconds"
        )
        assert (
            metric_family_name("columnar_store_bytes", "bytes")
            == "rit_columnar_store_bytes"
        )

    def test_non_suffix_units_untouched(self):
        assert metric_family_name("win_rate/depth1", "ratio") == "rit_win_rate_depth1"


class TestFormat:
    def test_counters_get_help_type_and_total_suffix(self):
        text = format_openmetrics(
            counters={"cra_rounds": {"value": 7, "unit": "count"}}
        )
        assert "# HELP rit_cra_rounds CRA rounds executed" in text
        assert "# TYPE rit_cra_rounds counter" in text
        assert "rit_cra_rounds_total 7" in text
        assert text.rstrip().endswith("# EOF")

    def test_seconds_counters_exposed_as_gauges_with_unit(self):
        text = format_openmetrics(
            counters={"stage_seconds/sample": {"value": 0.5, "unit": "seconds"}}
        )
        assert "# TYPE rit_stage_seconds_sample_seconds gauge" in text
        assert "# UNIT rit_stage_seconds_sample_seconds seconds" in text
        assert "rit_stage_seconds_sample_seconds 0.5" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = format_openmetrics(histograms=sample_histograms())
        families = parse_openmetrics(text)
        family = families["rit_shard_run_seconds"]
        assert family.type == "histogram"
        assert family.unit == "seconds"
        buckets = [s for s in family.samples if s.name.endswith("_bucket")]
        assert buckets[-1].labels["le"] == "+Inf"
        assert buckets[-1].value == 5  # includes the 70 s overflow
        values = [s.value for s in buckets]
        assert values == sorted(values)
        count = [s for s in family.samples if s.name.endswith("_count")]
        assert count[0].value == 5

    def test_gauges(self):
        text = format_openmetrics(
            gauges={"win_rate/depth1": {"value": 0.25, "unit": "ratio"}}
        )
        assert "# TYPE rit_win_rate_depth1 gauge" in text
        assert "rit_win_rate_depth1 0.25" in text

    def test_full_export_round_trips(self):
        text = format_openmetrics(
            counters={
                "service_epochs_closed": {"value": 3, "unit": "count"},
                "columnar_store_bytes": {"value": 4096, "unit": "bytes"},
            },
            histograms=sample_histograms(),
            gauges={
                "referral_depth_max": {"value": 4.0, "unit": "count"},
                "referral_depth_mean": {"value": 1.8, "unit": "ratio"},
            },
        )
        families = parse_openmetrics(text)
        assert set(families) == {
            "rit_service_epochs_closed",
            "rit_columnar_store_bytes",
            "rit_shard_run_seconds",
            "rit_ingest_queue_depth",
            "rit_referral_depth_max",
            "rit_referral_depth_mean",
        }
        for family in families.values():
            assert family.help  # every family carries HELP text

    def test_content_type_pin(self):
        assert CONTENT_TYPE.startswith("application/openmetrics-text")


class TestParserRejections:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE rit_x gauge\nrit_x 1\n")

    def test_blank_lines_rejected(self):
        with pytest.raises(ValueError, match="blank"):
            parse_openmetrics("# TYPE rit_x gauge\n\nrit_x 1\n# EOF\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_openmetrics("rit_x 1\n# EOF\n")

    def test_metadata_after_samples_rejected(self):
        text = "# TYPE rit_x gauge\nrit_x 1\n# HELP rit_x late\n# EOF\n"
        with pytest.raises(ValueError, match="after its"):
            parse_openmetrics(text)

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_openmetrics("# TYPE rit_x gauge\nrit_x lots\n# EOF\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_openmetrics("# TYPE rit_x summary\n# EOF\n")

    def test_histogram_without_inf_rejected(self):
        text = (
            "# TYPE rit_h histogram\n"
            'rit_h_bucket{le="1.0"} 2\n'
            "rit_h_count 2\nrit_h_sum 1.0\n# EOF\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_openmetrics(text)

    def test_histogram_non_cumulative_rejected(self):
        text = (
            "# TYPE rit_h histogram\n"
            'rit_h_bucket{le="1.0"} 5\n'
            'rit_h_bucket{le="+Inf"} 3\n'
            "rit_h_count 3\nrit_h_sum 1.0\n# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(text)

    def test_histogram_unordered_le_rejected(self):
        text = (
            "# TYPE rit_h histogram\n"
            'rit_h_bucket{le="2.0"} 1\n'
            'rit_h_bucket{le="1.0"} 2\n'
            'rit_h_bucket{le="+Inf"} 2\n'
            "rit_h_count 2\nrit_h_sum 1.0\n# EOF\n"
        )
        with pytest.raises(ValueError, match="strictly"):
            parse_openmetrics(text)

    def test_histogram_count_mismatch_rejected(self):
        text = (
            "# TYPE rit_h histogram\n"
            'rit_h_bucket{le="+Inf"} 4\n'
            "rit_h_count 3\nrit_h_sum 1.0\n# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(text)
