"""Golden trace, traced-vs-untraced equivalence, and no-op overhead.

The committed golden under ``tests/goldens/obs/trace_small.jsonl`` is the
*canonical* stream (timestamps and measured durations stripped) of one
small seeded RIT run.  Regenerate deliberately with::

    PYTHONPATH=src python -m tests.obs.test_trace_golden

after any intended change to the instrumentation.
"""

import statistics
from pathlib import Path

from repro.core.rit import RIT
from repro.core.types import Job
from repro.devtools.trace_schema import check_coverage
from repro.obs import NULL_TRACER, Tracer, canonical_events, read_jsonl, write_jsonl
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution

GOLDEN = Path(__file__).resolve().parent.parent / "goldens" / "obs" / "trace_small.jsonl"

SEED = 7
CONFIG = {"users": 120, "types": 3, "tasks_per_type": 8}


def _scenario():
    job = Job.uniform(CONFIG["types"], CONFIG["tasks_per_type"])
    scenario = paper_scenario(
        CONFIG["users"],
        job,
        SEED,
        distribution=UserDistribution(num_types=CONFIG["types"]),
    )
    return job, scenario


def _traced_run():
    tracer = Tracer("golden", seed=SEED, config=CONFIG)
    job, scenario = _scenario()
    mech = RIT(round_budget="until-complete", tracer=tracer)
    outcome = mech.run(job, scenario.truthful_asks(), scenario.tree, SEED)
    return tracer, outcome


class TestGoldenTrace:
    def test_matches_committed_golden(self):
        tracer, _ = _traced_run()
        assert canonical_events(tracer.events) == read_jsonl(str(GOLDEN)), (
            "canonical trace drifted from the golden; if the "
            "instrumentation change is deliberate, regenerate with "
            "`python -m tests.obs.test_trace_golden`"
        )

    def test_golden_is_schema_valid(self):
        # The golden has no timestamps; validate the structure that remains
        # by replaying a fresh (timestamped) run through the full gate.
        tracer, _ = _traced_run()
        assert check_coverage(tracer.events) == []

    def test_same_seed_rerun_is_canonically_identical(self):
        first, _ = _traced_run()
        second, _ = _traced_run()
        assert canonical_events(first.events) == canonical_events(second.events)
        assert len(first.events) == len(second.events)


class TestTracedVsUntraced:
    def test_identical_mechanism_outcome(self):
        """Instrumentation must not touch the RNG stream or the results."""
        _, traced = _traced_run()
        job, scenario = _scenario()
        untraced = RIT(round_budget="until-complete").run(
            job, scenario.truthful_asks(), scenario.tree, SEED
        )
        assert traced.allocation == untraced.allocation
        assert traced.auction_payments == untraced.auction_payments
        assert traced.payments == untraced.payments
        assert traced.completed == untraced.completed
        assert traced.rounds == untraced.rounds

    def test_counters_agree_with_outcome(self):
        tracer, outcome = _traced_run()
        assert tracer.value("tasks_allocated") == outcome.total_allocated
        assert tracer.value("cra_rounds") == len(outcome.rounds)
        assert tracer.value("payment_recipients") == len(outcome.payments)
        assert tracer.value("runs_completed") == int(outcome.completed)


class TestNullTracerOverhead:
    def test_disabled_tracing_is_not_slower(self):
        """p50 with the default NULL_TRACER stays within 5% of a recording
        tracer's p50 — i.e. the disabled path carries no measurable cost.
        Interleaved sampling cancels host noise."""
        job, scenario = _scenario()
        asks, tree = scenario.truthful_asks(), scenario.tree
        null_times, traced_times = [], []
        import time

        for rep in range(9):
            for samples, tracer in (
                (null_times, None),
                (traced_times, Tracer("overhead", seed=SEED, config=CONFIG)),
            ):
                mech = RIT(round_budget="until-complete", tracer=tracer)
                t0 = time.perf_counter()
                mech.run(job, asks, tree, SEED)
                samples.append(time.perf_counter() - t0)
        null_p50 = statistics.median(null_times)
        traced_p50 = statistics.median(traced_times)
        assert null_p50 <= traced_p50 * 1.05, (
            f"null-tracer p50 {null_p50:.6f}s vs traced {traced_p50:.6f}s"
        )

    def test_default_mechanism_uses_the_null_tracer(self):
        mech = RIT(round_budget="until-complete")
        assert mech.tracer is NULL_TRACER
        clone = mech.with_tracer(Tracer("t"))
        assert clone is not mech and mech.tracer is NULL_TRACER


def regenerate():  # pragma: no cover
    tracer, _ = _traced_run()
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    write_jsonl(canonical_events(tracer.events), str(GOLDEN))
    print(f"wrote {GOLDEN} ({len(tracer.events)} events)")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
