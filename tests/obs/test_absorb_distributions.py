"""Merge determinism of distribution events across worker sinks.

The parent tracer absorbs worker sinks in submission order, never
completion order; distribution events keep their record-time bucket
indices (computed against the shared fixed boundaries) and only their
owning span is remapped.  Interleaved counter/distribution streams from
out-of-order workers must therefore produce one canonical merged stream.
"""

from repro.devtools.trace_schema import validate_trace_events
from repro.obs import Tracer, canonical_events


def worker_sink(slot, *, jitter):
    """One worker's interleaved counter + distribution stream.

    ``jitter`` shifts the fake clock so two builds of the same worker
    have different timestamps — volatile data the canonical view strips.
    """
    ticks = iter(range(1000))
    tracer = Tracer(
        f"worker-{slot}",
        seed=slot,
        clock=lambda: (next(ticks) + jitter) * 0.001,
    )
    with tracer.span("shard", task_type=slot):
        tracer.count("service_shards_run")
        tracer.observe("shard_run_seconds", 0.25 + slot, epoch=0)
        tracer.observe("epoch_batch_events", 64 * (slot + 1), epoch=0)
        tracer.count("winners_selected", 3 + slot)
        tracer.observe("win_rate/depth1", slot / 4.0, epoch=0)
    return tracer.events


def merge(sinks):
    ticks = iter(range(1000))
    parent = Tracer("parent", seed=0, clock=lambda: next(ticks) * 0.001)
    with parent.span("epoch", index=0):
        for rep, events in enumerate(sinks):
            parent.absorb(events, rep=rep, worker=rep % 2)
    return parent


class TestAbsorbDistributions:
    def test_merged_stream_is_schema_valid(self):
        parent = merge([worker_sink(0, jitter=0), worker_sink(1, jitter=0)])
        assert validate_trace_events(parent.events) == []

    def test_distribution_events_tagged_and_remapped(self):
        parent = merge([worker_sink(0, jitter=0), worker_sink(1, jitter=0)])
        spans = {
            e["id"]
            for e in parent.events
            if e.get("ev") == "span_start"
        }
        distributions = [
            e for e in parent.events if e.get("ev") == "distribution"
        ]
        assert len(distributions) == 6  # 3 per worker
        for event in distributions:
            assert event["rep"] in (0, 1)
            assert event["w"] == event["rep"] % 2
            assert event["span"] in spans  # remapped into the parent's ids
            assert event["epoch"] == 0

    def test_submission_order_invariance(self):
        # Same workers, different wall-clock interleavings (jitter), same
        # submission order: the canonical merged stream is identical.
        a = merge([worker_sink(0, jitter=0), worker_sink(1, jitter=500)])
        b = merge([worker_sink(0, jitter=300), worker_sink(1, jitter=0)])
        assert canonical_events(a.events) == canonical_events(b.events)

    def test_volatile_values_stripped_canonical_values_kept(self):
        parent = merge([worker_sink(0, jitter=0)])
        canonical = canonical_events(parent.events)
        by_name = {
            e["name"]: e for e in canonical if e.get("ev") == "distribution"
        }
        # Measured wall time: value/bucket stripped, vol flag kept.
        assert "value" not in by_name["shard_run_seconds"]
        assert "bucket" not in by_name["shard_run_seconds"]
        assert by_name["shard_run_seconds"]["vol"] is True
        # Deterministic batch size and win-rate surface: kept verbatim.
        assert by_name["epoch_batch_events"]["value"] == 64
        assert "bucket" in by_name["epoch_batch_events"]
        assert by_name["win_rate/depth1"]["value"] == 0.0

    def test_counter_totals_fold_across_workers(self):
        parent = merge([worker_sink(0, jitter=0), worker_sink(1, jitter=0)])
        assert parent.value("service_shards_run") == 2
        assert parent.value("winners_selected") == 3 + 4
