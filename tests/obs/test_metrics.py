"""The deterministic histogram/gauge layer (`repro.obs.metrics`)."""

import pytest

from repro.obs.metrics import (
    BUCKET_FAMILIES,
    METRIC_CATALOG,
    METRIC_FAMILIES,
    Histogram,
    MetricSpec,
    bucket_boundaries,
    bucket_index,
    describe_metric,
    new_histogram,
)


class TestBucketFamilies:
    def test_latency_boundaries_are_exact_powers_of_two(self):
        boundaries = bucket_boundaries("latency_seconds")
        assert boundaries[0] == 2.0**-20
        assert boundaries[-1] == 64.0
        assert list(boundaries) == [2.0**k for k in range(-20, 7)]

    def test_depth_boundaries(self):
        boundaries = bucket_boundaries("depth")
        assert boundaries == tuple(float(2**k) for k in range(0, 21))

    def test_ratio_boundaries_are_sixteenths(self):
        boundaries = bucket_boundaries("ratio")
        assert boundaries == tuple(i / 16.0 for i in range(17))
        assert boundaries[0] == 0.0 and boundaries[-1] == 1.0

    def test_all_families_strictly_increasing(self):
        for family, boundaries in BUCKET_FAMILIES.items():
            assert list(boundaries) == sorted(boundaries), family
            assert len(set(boundaries)) == len(boundaries), family

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown bucket family"):
            bucket_boundaries("nope")


class TestBucketIndex:
    def test_boundary_values_land_in_their_bucket(self):
        # Upper-bound buckets: a value equal to a boundary belongs to it.
        boundaries = bucket_boundaries("depth")
        assert bucket_index(boundaries, 1.0) == 0
        assert bucket_index(boundaries, 2.0) == 1
        assert bucket_index(boundaries, 3.0) == 2  # (2, 4]

    def test_overflow_bucket(self):
        boundaries = bucket_boundaries("depth")
        assert bucket_index(boundaries, 2.0**20) == len(boundaries) - 1
        assert bucket_index(boundaries, 2.0**20 + 1) == len(boundaries)

    def test_zero_and_negative_land_in_first_bucket(self):
        boundaries = bucket_boundaries("latency_seconds")
        assert bucket_index(boundaries, 0.0) == 0
        assert bucket_index(boundaries, -1.0) == 0


class TestMetricSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricSpec("summary", "count", None, False, "x")

    def test_histogram_requires_registered_family(self):
        with pytest.raises(ValueError, match="not a registered"):
            MetricSpec("histogram", "count", "custom", False, "x")

    def test_gauge_rejects_family(self):
        with pytest.raises(ValueError, match="no bucket family"):
            MetricSpec("gauge", "count", "depth", False, "x")

    def test_seconds_must_be_volatile(self):
        with pytest.raises(ValueError, match="volatile"):
            MetricSpec("histogram", "seconds", "latency_seconds", False, "x")

    def test_catalog_entries_are_consistent(self):
        for name, spec in METRIC_CATALOG.items():
            assert describe_metric(name) is spec
            if spec.kind == "histogram":
                assert spec.family in BUCKET_FAMILIES, name

    def test_family_prefix_resolution(self):
        spec = describe_metric("win_rate/depth3")
        assert spec is METRIC_FAMILIES["win_rate/"]
        assert describe_metric("no_such_metric") is None


class TestHistogram:
    def test_new_histogram_rejects_gauges_and_unknowns(self):
        with pytest.raises(ValueError, match="not in METRIC_CATALOG"):
            new_histogram("no_such_metric")
        with pytest.raises(ValueError, match="gauge, not a histogram"):
            new_histogram("referral_depth_max")

    def test_observe_tracks_exact_extremes(self):
        hist = new_histogram("shard_run_seconds")
        for value in (0.25, 0.003, 1.7, 0.003):
            hist.observe(value)
        assert hist.count == 4
        assert hist.vmin == 0.003
        assert hist.vmax == 1.7
        assert hist.total == pytest.approx(0.25 + 0.003 + 1.7 + 0.003)

    def test_merge_is_order_independent(self):
        values = [0.001 * (3**k % 97) for k in range(50)]
        whole = new_histogram("ingest_admit_seconds")
        for v in values:
            whole.observe(v)
        # Split across three "workers", merge in a different order.
        parts = [new_histogram("ingest_admit_seconds") for _ in range(3)]
        for k, v in enumerate(values):
            parts[k % 3].observe(v)
        merged = new_histogram("ingest_admit_seconds")
        for part in (parts[2], parts[0], parts[1]):
            merged.merge(part)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.vmin == whole.vmin
        assert merged.vmax == whole.vmax
        assert merged.total == pytest.approx(whole.total)

    def test_merge_rejects_incompatible(self):
        with pytest.raises(ValueError, match="cannot merge"):
            new_histogram("ingest_queue_depth").merge(
                new_histogram("shard_run_seconds")
            )

    def test_quantile_extremes_are_exact_observations(self):
        hist = new_histogram("epoch_batch_events")
        for v in (3, 17, 250, 9000):
            hist.observe(v)
        assert hist.quantile(0.0) == 3
        assert hist.quantile(1.0) == 9000

    def test_quantile_interpolates_within_owning_bucket(self):
        hist = new_histogram("epoch_batch_events")
        for v in [10] * 100:
            hist.observe(v)
        # All mass in one bucket, min == max == 10: every quantile is 10.
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == 10

    def test_quantile_monotone(self):
        hist = new_histogram("ingest_queue_depth")
        for v in range(1, 300):
            hist.observe(v)
        qs = [hist.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_quantile_validates_range_and_empty(self):
        hist = new_histogram("shard_run_seconds")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert hist.quantile(0.5) == 0.0  # empty histogram: schema-stable

    def test_summary_shape(self):
        hist = new_histogram("shard_run_seconds")
        hist.observe(0.5)
        doc = hist.summary()
        assert set(doc) == {"count", "sum", "min", "max", "p50", "p95", "p99"}
        assert doc["count"] == 1
        assert doc["min"] == doc["max"] == doc["p50"] == 0.5

    def test_roundtrip_serialization(self):
        hist = new_histogram("ingest_queue_depth")
        for v in (1, 5, 5, 4096, 10**7):
            hist.observe(v)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.summary() == hist.summary()

    def test_from_dict_rejects_wrong_bucket_count(self):
        doc = new_histogram("ingest_queue_depth").to_dict()
        doc["counts"] = doc["counts"][:-1]
        with pytest.raises(ValueError, match="buckets in the document"):
            Histogram.from_dict(doc)

    def test_bit_identical_across_instances(self):
        # The determinism contract: same observations, same bucket counts,
        # whatever the construction path.
        a = new_histogram("epoch_close_to_outcome_seconds")
        b = Histogram(
            "epoch_close_to_outcome_seconds", "seconds", "latency_seconds"
        )
        for v in (1e-6, 0.015, 0.25, 63.0, 100.0):
            a.observe(v)
            b.observe(v)
        assert a.counts == b.counts
        assert a.to_dict() == b.to_dict()
