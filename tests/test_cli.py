"""Tests for the command-line front-end."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig6a"])
        assert args.command == "experiment"
        assert args.id == "fig6a"
        assert args.scale is None
        assert args.save is None

    def test_experiment_all(self):
        args = build_parser().parse_args(["experiment", "all", "--scale", "smoke"])
        assert args.id == "all"
        assert args.scale == "smoke"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_bounds_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert args.h == 0.8
        assert args.kmax == 20

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--users", "50", "--tasks-per-type", "5", "--seed", "1"]
        )
        assert (args.users, args.tasks_per_type, args.seed) == (50, 5, 1)

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_challenges(self, capsys):
        assert main(["challenges"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 3" in out
        assert out.count("DEVIATION WINS") == 2

    def test_bounds(self, capsys):
        assert main(["bounds", "--tasks", "100", "5000"]) == 0
        out = capsys.readouterr().out
        assert "lemma budget" in out
        assert "5000" in out

    def test_demo(self, capsys):
        code = main(
            ["demo", "--users", "200", "--tasks-per-type", "10",
             "--types", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "tasks allocated: 40" in out

    def test_experiment_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        assert main(["experiment", "fig6b", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig6b" in out
        assert "RIT" in out

    def test_experiment_save(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        path = tmp_path / "out.json"
        assert main(["experiment", "fig7b", "--seed", "4", "--save", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "fig7b"
        assert payload["series"]

    def test_experiment_store_and_baseline(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        store = str(tmp_path / "store")
        assert main(
            ["experiment", "fig7b", "--seed", "4", "--store", store,
             "--tag", "base"]
        ) == 0
        # Same seed -> identical result -> no drift, exit 0.
        assert main(
            ["experiment", "fig7b", "--seed", "4", "--store", store,
             "--baseline", "base"]
        ) == 0
        out = capsys.readouterr().out
        assert "no drift" in out
        # Different seed + tiny tolerance -> drift, exit 1.
        assert main(
            ["experiment", "fig7b", "--seed", "99", "--store", store,
             "--baseline", "base", "--tolerance", "0.0001"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_experiment_chart_flag(self, monkeypatch, capsys):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        assert main(["experiment", "fig6b", "--seed", "4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "* RIT" in out  # chart legend

    def test_report_command(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("RIT_SCALE", "smoke")
        out_path = tmp_path / "report.md"
        assert main(
            ["report", "--seed", "4", "--figures", "fig7b", "--no-charts",
             "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        assert "shape checks passed" in out_path.read_text()

    def test_experiment_scale_flag_overrides_env(self, monkeypatch, capsys):
        monkeypatch.setenv("RIT_SCALE", "paper")  # would be hours if honored
        assert main(["experiment", "fig8b", "--scale", "smoke", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "'scale': 'smoke'" in out


class TestDemoExplain:
    def test_demo_explain(self, capsys):
        assert main(
            ["demo", "--users", "150", "--tasks-per-type", "8",
             "--types", "3", "--seed", "5", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert ("COMPLETED" in out) or ("VOID RUN" in out)


class TestAudit:
    def test_audit_runs_and_reports(self, capsys):
        code = main(
            ["audit", "--users", "500", "--tasks-per-type", "40",
             "--types", "3", "--seed", "1", "--reps", "6"]
        )
        out = capsys.readouterr().out
        assert "auditing user" in out
        assert "all candidates" in out
        assert code in (0, 2)  # 2 = significant exploit found

    def test_audit_parser_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.max_capacity == 6
        assert args.reps == 20


class TestTrace:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.seed == 0
        assert args.out == "TRACE_RIT.jsonl"
        assert args.metrics == "prometheus"
        assert not args.smoke

    def test_trace_smoke_emits_valid_jsonl(self, tmp_path, capsys):
        from repro.devtools.trace_schema import check_coverage
        from repro.obs import read_jsonl

        out = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--users", "120", "--types", "3",
             "--tasks-per-type", "8", "--seed", "7",
             "--out", str(out), "--smoke"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "trace smoke OK" in text
        assert "run" in text and "mechanism" in text
        events = read_jsonl(str(out))
        assert check_coverage(events) == []
        header = events[0]
        assert header["seed"] == 7
        assert header["run_id"].startswith("rit-7-")

    def test_same_seed_reruns_identical_modulo_time(self, tmp_path):
        from repro.obs import canonical_events, read_jsonl

        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(
                ["trace", "--users", "120", "--types", "3",
                 "--tasks-per-type", "8", "--seed", "2", "--out", str(path)]
            ) == 0
        first, second = (read_jsonl(str(p)) for p in paths)
        assert canonical_events(first) == canonical_events(second)

    def test_metrics_json_to_file(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(
            ["trace", "--users", "120", "--types", "3",
             "--tasks-per-type", "8", "--out", str(tmp_path / "t.jsonl"),
             "--metrics", "json", "--metrics-out", str(metrics)]
        ) == 0
        payload = json.loads(metrics.read_text())
        assert payload["cra_rounds"]["unit"] == "count"
        assert payload["tasks_allocated"]["value"] == 24


class TestArena:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["arena"])
        assert args.command == "arena"
        assert args.mechanisms is None
        assert args.runs == 2
        assert args.out == "BENCH_RIT.json"
        assert not args.smoke and not args.json and not args.bench

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arena", "--mechanisms", "vcg"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arena", "--attack", "ddos"])

    def test_smoke_json_and_bench_merge(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            ["arena", "--smoke", "--json", "--bench", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        section = json.loads(stdout[: stdout.rindex("}") + 1])
        assert section["determinism"]["bit_identical"] is True
        assert section["rit_sybil_gain_minimal"] is True
        merged = json.loads(out.read_text())
        assert merged["arena"]["config"]["users"] == 220
        from repro.devtools.bench import _validate_arena_section

        assert _validate_arena_section(merged["arena"]) == []
