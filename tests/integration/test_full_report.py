"""End-to-end: the full reproduction report at smoke scale.

Runs every figure through :func:`generate_report` in one pass — the same
path `rit report` takes — and requires every shape check to pass.  This
is the single highest-level assertion in the suite: "the paper
reproduces".
"""

import dataclasses
import re

import pytest

from repro.simulation.experiments import SMOKE_SCALE
from repro.simulation.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    scale = dataclasses.replace(SMOKE_SCALE, fig9_reps=8)
    return generate_report(scale=scale, rng=2024, charts=False)


def test_all_figures_present(report_text):
    for fig in ("fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "fig9"):
        assert f"## {fig}" in report_text


def test_every_shape_check_passes(report_text):
    match = re.search(r"\*\*(\d+)/(\d+) shape checks passed", report_text)
    assert match, "summary line missing"
    passed, total = int(match.group(1)), int(match.group(2))
    failures = [
        line for line in report_text.splitlines() if line.startswith("- FAILED")
    ]
    assert passed == total, (
        f"{total - passed} shape check(s) failed:\n" + "\n".join(failures)
    )


def test_design_challenges_included(report_text):
    assert "violated (as the paper shows)" in report_text
