"""Property-based end-to-end tests of RIT on random small instances.

Hypothesis drives random jobs, ask profiles and trees through the full
mechanism and asserts the structural invariants that must hold on *every*
run, regardless of coin flips:

* the outcome is all-or-nothing (void, or every task allocated);
* nobody is allocated beyond its claimed capacity or outside its type;
* auction payments cover winners' asks (per-unit price >= ask value);
* final payments decompose as auction + non-negative referral, bounded by
  twice the auction total;
* a user absent from the winners never receives an auction payment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


@st.composite
def rit_instances(draw):
    """A random small crowdsensing instance plus a seed."""
    num_types = draw(st.integers(min_value=1, max_value=3))
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=num_types,
            max_size=num_types,
        )
    )
    if sum(counts) == 0:
        counts[0] = 1
    job = Job(counts)

    num_users = draw(st.integers(min_value=1, max_value=25))
    tree = IncentiveTree()
    asks = {}
    for uid in range(num_users):
        parent = ROOT if uid == 0 else draw(
            st.sampled_from([ROOT] + list(range(uid)))
        )
        tree.attach(uid, parent)
        asks[uid] = Ask(
            task_type=draw(st.integers(min_value=0, max_value=num_types - 1)),
            capacity=draw(st.integers(min_value=1, max_value=5)),
            value=draw(
                st.floats(min_value=0.05, max_value=20.0, allow_nan=False)
            ),
        )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return job, asks, tree, seed


class TestRITInvariants:
    @given(instance=rit_instances())
    @settings(max_examples=120, deadline=None)
    def test_structural_invariants(self, instance):
        job, asks, tree, seed = instance
        mech = RIT(round_budget="until-complete")
        out = mech.run(job, asks, tree, np.random.default_rng(seed))

        if not out.completed:
            # Void is all-or-nothing.
            assert out.allocation == {}
            assert out.payments == {}
            assert out.auction_payments == {}
            return

        # Per-type coverage is exact.
        per_type = {tau: 0 for tau in job.types()}
        for uid, x in out.allocation.items():
            assert x <= asks[uid].capacity
            per_type[asks[uid].task_type] += x
        for tau in job.types():
            assert per_type[tau] == job.tasks_of(tau)

        # Winners are paid at least their asks (IR at the ask level).
        for uid, x in out.allocation.items():
            assert out.auction_payment_of(uid) >= x * asks[uid].value - 1e-9

        # Non-winners earn no auction payment.
        for uid, pa in out.auction_payments.items():
            assert out.tasks_of(uid) > 0 or pa == 0.0

        # Payment decomposition and the §7-C budget bound.
        for uid in out.payments:
            assert out.payment_of(uid) >= out.auction_payment_of(uid) - 1e-9
        assert out.total_payment <= 2 * out.total_auction_payment + 1e-9

    @given(instance=rit_instances())
    @settings(max_examples=60, deadline=None)
    def test_budget_policies_agree_on_validation(self, instance):
        """Whatever the policy, a completed outcome covers the job and a
        failed one is void — policies differ only in *when* they give up."""
        job, asks, tree, seed = instance
        for policy in ("lemma", "paper", "until-complete"):
            mech = RIT(round_budget=policy)
            out = mech.run(job, asks, tree, np.random.default_rng(seed))
            if out.completed:
                assert out.total_allocated == job.size
            else:
                assert out.total_allocated == 0

    @given(instance=rit_instances())
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, instance):
        job, asks, tree, seed = instance
        mech = RIT(round_budget="until-complete")
        a = mech.run(job, asks, tree, np.random.default_rng(seed))
        b = mech.run(job, asks, tree, np.random.default_rng(seed))
        assert a.allocation == b.allocation
        assert a.auction_payments == b.auction_payments
        assert a.payments == b.payments


class TestExtractConsistency:
    @given(instance=rit_instances())
    @settings(max_examples=60, deadline=None)
    def test_fast_pool_matches_reference_extract(self, instance):
        """RIT's vectorized per-type pools must agree with the reference
        Algorithm 2 implementation at full capacity."""
        from repro.core.extract import extract
        from repro.core.rit import _group_by_type

        job, asks, tree, _ = instance
        pools = _group_by_type(asks, job.num_types)
        for tau in job.types():
            reference = extract(tau, asks)
            if tau not in pools:
                assert len(reference) == 0
                continue
            values, owners = pools[tau].unit_asks()
            assert values.tolist() == reference.values.tolist()
            assert owners.tolist() == reference.owners.tolist()
