"""Monte-Carlo validation of the Lemma 6.2 collusion-resistance bound.

Lemma 6.2: one CRA round is ``k``-truthful with probability at least

    B(k, q, m_i) = (1 − 1/(q+m_i))^k + log10(1 − 2k/(q+m_i)) − e^{−(q+m_i)/8}

i.e. for ANY fixed deviation by a coalition controlling ``k`` unit asks,
the fraction of coin streams on which the deviation changes the
coalition's outcome for the better is at most ``1 − B``.

These tests estimate that fraction empirically with paired coins on a
single-type RIT and compare it against the bound (plus binomial sampling
slack).  They also check the bound is not vacuously loose: at small
``q + m_i`` manipulation frequencies really do grow.
"""

import math

import numpy as np
import pytest

from repro.core.bounds import cra_truthful_probability
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.incentive_tree import ROOT, IncentiveTree


def build_single_type_instance(num_users, capacity, m_i, seed):
    """A flat single-type instance with ample supply."""
    gen = np.random.default_rng(seed)
    tree = IncentiveTree()
    asks = {}
    costs = {}
    for uid in range(num_users):
        tree.attach(uid, ROOT)
        cost = float(gen.uniform(0.05, 10.0))
        asks[uid] = Ask(0, capacity, cost)
        costs[uid] = cost
    return Job([m_i]), asks, tree, costs


def deviation_success_rate(
    job, asks, tree, costs, coalition, overrides, runs, seed
):
    """Fraction of paired coin streams where the deviation strictly gains."""
    mech = RIT(round_budget="until-complete")
    deviant = dict(asks)
    for uid, value in overrides.items():
        deviant[uid] = deviant[uid].with_value(value)
    seeds = np.random.SeedSequence(seed).spawn(runs)
    wins = 0
    for s in seeds:
        honest = mech.run(job, asks, tree, np.random.default_rng(s))
        attacked = mech.run(job, deviant, tree, np.random.default_rng(s))
        honest_total = sum(honest.utility_of(u, costs[u]) for u in coalition)
        attacked_total = sum(attacked.utility_of(u, costs[u]) for u in coalition)
        if attacked_total > honest_total + 1e-9:
            wins += 1
    return wins / runs


class TestBoundHolds:
    @pytest.mark.parametrize("markup", [1.3, 2.0])
    def test_overbid_success_rate_within_bound(self, markup):
        """Coalition of 2 users × capacity 5 = 10 unit asks at m_i = 200:
        B ≈ 0.90, so the deviation may win at most ~10% of runs (+ slack)."""
        m_i, capacity = 200, 5
        job, asks, tree, costs = build_single_type_instance(
            num_users=160, capacity=capacity, m_i=m_i, seed=1
        )
        coalition = [0, 1]
        k = capacity * len(coalition)
        overrides = {u: min(asks[u].value * markup, 30.0) for u in coalition}
        runs = 120
        rate = deviation_success_rate(
            job, asks, tree, costs, coalition, overrides, runs, seed=2
        )
        bound = cra_truthful_probability(k, 0, m_i)
        allowed = 1.0 - bound
        # Binomial 3-sigma slack on the estimate.
        slack = 3 * math.sqrt(allowed * (1 - allowed) / runs) + 0.02
        assert rate <= allowed + slack, (
            f"markup {markup}: deviation succeeded {rate:.1%} of runs, "
            f"bound allows {allowed:.1%} (+{slack:.1%} slack)"
        )

    def test_bound_is_informative_not_vacuous(self):
        """Sanity on the other side: the bound at this scale is a real
        constraint (positive and below 1), so the test above is not
        trivially satisfied."""
        bound = cra_truthful_probability(10, 0, 200)
        assert 0.7 < bound < 1.0


class TestSmallScaleDegradation:
    def test_manipulation_grows_as_supply_shrinks(self):
        """The guarantee weakens as q + m_i shrinks relative to k —
        the empirical frequency of *any outcome change* for the coalition
        should not decrease when m_i drops 200 -> 20."""
        rates = {}
        for m_i, num_users in ((200, 160), (20, 30)):
            job, asks, tree, costs = build_single_type_instance(
                num_users=num_users, capacity=5, m_i=m_i, seed=3
            )
            coalition = [0, 1]
            overrides = {u: min(asks[u].value * 2.0, 30.0) for u in coalition}
            mech = RIT(round_budget="until-complete")
            deviant = dict(asks)
            for uid, value in overrides.items():
                deviant[uid] = deviant[uid].with_value(value)
            seeds = np.random.SeedSequence(4).spawn(60)
            changed = 0
            for s in seeds:
                honest = mech.run(job, asks, tree, np.random.default_rng(s))
                attacked = mech.run(job, deviant, tree, np.random.default_rng(s))
                h = tuple(
                    (honest.tasks_of(u), round(honest.auction_payment_of(u), 9))
                    for u in coalition
                )
                a = tuple(
                    (attacked.tasks_of(u), round(attacked.auction_payment_of(u), 9))
                    for u in coalition
                )
                if h != a:
                    changed += 1
            rates[m_i] = changed / 60
        assert rates[20] >= rates[200] - 0.05, rates
