"""Failure-injection and adversarial-input tests.

The mechanism stack must degrade *predictably* — void, raise a typed
error, or stay numerically sane — under hostile or degenerate inputs:
extreme values, pathological trees, supply droughts, duplicate-heavy
profiles, and RNG corner cases.
"""

import math

import numpy as np
import pytest

from repro.core.cra import cra
from repro.core.exceptions import ModelError
from repro.core.rit import RIT
from repro.core.types import Ask, Job
from repro.tree.builder import chain_tree, star_tree
from repro.tree.incentive_tree import ROOT, IncentiveTree


def run(job, asks, tree, seed=0):
    return RIT(round_budget="until-complete").run(
        job, asks, tree, np.random.default_rng(seed)
    )


class TestExtremeValues:
    def test_microscopic_and_astronomic_asks_coexist(self):
        tree = star_tree(20)
        asks = {
            uid: Ask(0, 2, 1e-9 if uid % 2 == 0 else 1e9)
            for uid in range(20)
        }
        out = run(Job([5]), asks, tree)
        if out.completed:
            assert math.isfinite(out.total_payment)
            for uid, x in out.allocation.items():
                assert out.auction_payment_of(uid) >= x * asks[uid].value - 1e-9

    def test_all_identical_asks(self):
        tree = star_tree(30)
        asks = {uid: Ask(0, 1, 3.0) for uid in range(30)}
        out = run(Job([10]), asks, tree, seed=1)
        if out.completed:
            assert out.total_allocated == 10
            # Uniform price: everyone paid exactly 3 per task.
            for uid, x in out.allocation.items():
                assert out.auction_payment_of(uid) == pytest.approx(3.0 * x)

    def test_huge_capacity_single_supplier(self):
        """One user could serve everything; the mechanism still needs a
        second ask to clear (consensus flooring)."""
        tree = star_tree(2)
        asks = {0: Ask(0, 1000, 0.5), 1: Ask(0, 1000, 9.9)}
        out = run(Job([100]), asks, tree, seed=2)
        # Whatever happens, all-or-nothing holds.
        assert out.total_allocated in (0, 100)


class TestPathologicalTrees:
    def test_deep_chain_payments_do_not_overflow(self):
        n = 600
        tree = chain_tree(n)
        asks = {uid: Ask(uid % 2, 2, 1.0 + uid % 7) for uid in range(n)}
        out = run(Job([20, 20]), asks, tree, seed=3)
        if out.completed:
            assert all(math.isfinite(p) for p in out.payments.values())
            # Depth-decayed referrals vanish but never go negative.
            for uid, pa in out.auction_payments.items():
                assert out.payment_of(uid) >= pa - 1e-9

    def test_wide_star_with_one_type(self):
        n = 500
        tree = star_tree(n)
        asks = {uid: Ask(0, 1, 0.1 + uid * 0.01) for uid in range(n)}
        out = run(Job([50]), asks, tree, seed=4)
        if out.completed:
            # No solicitation at depth 1: payments == auction payments.
            for uid in out.payments:
                assert out.payment_of(uid) == pytest.approx(
                    out.auction_payment_of(uid)
                )


class TestSupplyDroughts:
    def test_one_type_unsupplied_voids_everything(self):
        tree = star_tree(10)
        asks = {uid: Ask(0, 3, 1.0) for uid in range(10)}  # nobody bids τ1
        out = run(Job([5, 5]), asks, tree, seed=5)
        assert not out.completed
        assert out.payments == {}

    def test_gradual_exhaustion(self):
        """Supply exactly equals demand: either it completes using every
        unit, or it voids cleanly."""
        tree = star_tree(5)
        asks = {uid: Ask(0, 2, 1.0 + uid) for uid in range(5)}
        out = run(Job([10]), asks, tree, seed=6)
        assert out.total_allocated in (0, 10)
        if out.completed:
            for uid in range(5):
                assert out.tasks_of(uid) == 2


class TestMalformedInputs:
    def test_nan_ask_rejected_at_construction(self):
        with pytest.raises(ModelError):
            Ask(0, 1, float("nan"))

    def test_infinite_ask_rejected_at_construction(self):
        with pytest.raises(ModelError):
            Ask(0, 1, float("inf"))

    def test_cra_with_nan_values_never_pays_below_winner_ask(self):
        """CRA is an internal API fed only by validated Asks, but it must
        not crash on weird-but-finite inputs like denormals."""
        values = np.array([5e-324, 1.0, 2.0, 3.0, 4.0] * 10)
        result = cra(values, 3, 3, np.random.default_rng(7))
        if result.num_winners:
            assert np.all(values[result.winners] <= result.price + 1e-12)


class TestRNGEdgeCases:
    def test_shared_generator_across_runs_is_legal(self):
        """Passing one Generator object into consecutive runs chains its
        state — legal, and results stay valid (just not reproducible
        without the seed)."""
        gen = np.random.default_rng(8)
        tree = star_tree(30)
        asks = {uid: Ask(0, 2, 1.0 + uid % 5) for uid in range(30)}
        mech = RIT(round_budget="until-complete")
        first = mech.run(Job([8]), asks, tree, gen)
        second = mech.run(Job([8]), asks, tree, gen)
        for out in (first, second):
            assert out.total_allocated in (0, 8)

    def test_none_seed_works(self):
        tree = star_tree(20)
        asks = {uid: Ask(0, 2, 1.0) for uid in range(20)}
        out = RIT(round_budget="until-complete").run(Job([5]), asks, tree, None)
        assert out.total_allocated in (0, 5)
