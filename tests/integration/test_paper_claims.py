"""Integration tests tying RIT's behaviour to the paper's theorems.

These run the full mechanism on moderate scenarios and check the §3-C
properties end to end — the empirical counterparts of Theorems 1-4.
"""

import numpy as np
import pytest

from repro.analysis.properties import check_individual_rationality
from repro.attacks.evaluator import compare_misreport, compare_sybil_attack
from repro.attacks.sybil import SybilAttack
from repro.core.rit import RIT
from repro.core.types import Job
from repro.workloads.scenarios import paper_scenario
from repro.workloads.users import UserDistribution


@pytest.fixture(scope="module")
def scenario():
    """A mid-size threshold-grown scenario (Fig. 9-flavoured)."""
    return paper_scenario(
        500,
        Job.uniform(5, 15),
        rng=2024,
        distribution=UserDistribution(num_types=5),
        supply_threshold=True,
    )


@pytest.fixture(scope="module")
def mechanism():
    return RIT(h=0.8, round_budget="until-complete")


class TestTheorem1IndividualRationality:
    def test_ir_across_many_seeds(self, scenario, mechanism):
        asks = scenario.truthful_asks()
        costs = scenario.costs()
        for seed in range(10):
            out = mechanism.run(scenario.job, asks, scenario.tree, rng=seed)
            report = check_individual_rationality(out, costs)
            assert report.holds, report.detail


class TestTheorem2Robustness:
    """Truthfulness and sybil-proofness, in expectation over coin flips."""

    def _victim(self, scenario, mechanism):
        """A tree member that wins under truthful play."""
        asks = scenario.truthful_asks()
        out = mechanism.run(scenario.job, asks, scenario.tree, rng=123)
        winners = [
            uid
            for uid, pa in out.auction_payments.items()
            if pa > 0 and scenario.population[uid].capacity >= 4
        ]
        assert winners, "probe run produced no multi-capacity winner"
        return winners[0]

    def test_misreporting_does_not_pay_in_expectation(self, scenario, mechanism):
        victim = self._victim(scenario, mechanism)
        asks = scenario.truthful_asks()
        cost = scenario.population[victim].cost
        for factor in (0.6, 1.4):
            comparison = compare_misreport(
                mechanism,
                scenario.job,
                asks,
                scenario.tree,
                victim,
                cost,
                cost * factor,
                reps=40,
                rng=7,
            )
            # Allow a noise margin: the guarantee is probabilistic and the
            # estimate over 40 paired runs carries sampling error.
            margin = 0.15 * max(1.0, abs(comparison.honest_utility))
            assert comparison.gain <= margin, (
                f"misreport x{factor} gained {comparison.gain:.3f} "
                f"(honest {comparison.honest_utility:.3f})"
            )

    def test_sybil_attack_does_not_pay_in_expectation(self, scenario, mechanism):
        victim = self._victim(scenario, mechanism)
        asks = scenario.truthful_asks()
        user = scenario.population[victim]
        for delta in (2, 3):
            attack = SybilAttack.random(
                victim,
                delta,
                user.capacity,
                user.cost,
                len(scenario.tree.children(victim)),
                rng=11,
            )
            comparison = compare_sybil_attack(
                mechanism,
                scenario.job,
                asks,
                scenario.tree,
                attack,
                user.cost,
                reps=40,
                rng=13,
                true_capacity=user.capacity,
            )
            margin = 0.15 * max(1.0, abs(comparison.honest_utility))
            assert comparison.gain <= margin, (
                f"{delta}-identity attack gained {comparison.gain:.3f} "
                f"(honest {comparison.honest_utility:.3f})"
            )


class TestTheorem3Efficiency:
    def test_running_time_scales_roughly_linearly(self):
        """O(N·|J|): doubling users should not blow up the runtime by more
        than ~4x (generous bound to stay robust on noisy CI machines)."""
        mech = RIT(round_budget="until-complete")
        times = {}
        for n in (400, 800):
            sc = paper_scenario(
                n,
                Job.uniform(4, 20),
                rng=5,
                distribution=UserDistribution(num_types=4),
            )
            reps = []
            for seed in range(5):
                out = mech.run(sc.job, sc.truthful_asks(), sc.tree, rng=seed)
                reps.append(out.elapsed_total)
            times[n] = min(reps)
        assert times[800] <= 6 * max(times[400], 1e-4)


class TestTheorem4SolicitationIncentive:
    def test_recruiting_descendants_weakly_helps(self, scenario, mechanism):
        """Compare each inner node's payment against its auction payment:
        referral income is always non-negative (the additive form of
        Theorem 4)."""
        asks = scenario.truthful_asks()
        out = mechanism.run(scenario.job, asks, scenario.tree, rng=31)
        for uid in out.payments:
            assert out.payment_of(uid) >= out.auction_payment_of(uid) - 1e-9


class TestBudgetIdentity:
    def test_platform_budget_decomposition(self, scenario, mechanism):
        """Σ p_j = Σ p^A_j + referral outlay, with the outlay bounded by
        Σ p^A_j (§7-C)."""
        asks = scenario.truthful_asks()
        out = mechanism.run(scenario.job, asks, scenario.tree, rng=41)
        referral = sum(out.solicitation_rewards().values())
        assert out.total_payment == pytest.approx(
            out.total_auction_payment + referral
        )
        assert referral <= out.total_auction_payment + 1e-9
